#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/hooks.h"

namespace reflex::obs {
namespace {

TEST(LabelSetTest, SortedAndCanonical) {
  LabelSet a;
  a.Set("tenant", "3");
  a.Set("thread", "0");
  LabelSet b;
  b.Set("thread", "0");
  b.Set("tenant", "3");
  EXPECT_TRUE(a == b) << "insertion order must not matter";
  EXPECT_EQ(a.Render(), "{tenant=3,thread=0}");
  EXPECT_EQ(LabelSet{}.Render(), "");
}

TEST(LabelSetTest, SetOverwritesExistingKey) {
  LabelSet l;
  l.Set("thread", "0");
  l.Set("thread", "1");
  EXPECT_EQ(l.Render(), "{thread=1}");
}

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("requests", Label("thread", 0));
  Counter* c2 = reg.GetCounter("requests", Label("thread", 0));
  EXPECT_EQ(c1, c2) << "same name+labels => same metric";
  Counter* other = reg.GetCounter("requests", Label("thread", 1));
  EXPECT_NE(c1, other) << "different labels => different metric";
  c1->Add(2.5);
  c1->Increment();
  EXPECT_DOUBLE_EQ(c2->value(), 3.5);
  EXPECT_DOUBLE_EQ(other->value(), 0.0);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("queue_depth");
  g->Set(5.0);
  g->Add(-2.0);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);
}

TEST(MetricsRegistryTest, HistogramRegistered) {
  MetricsRegistry reg;
  sim::Histogram* h = reg.GetHistogram("latency_ns");
  h->Record(1000);
  EXPECT_EQ(reg.GetHistogram("latency_ns")->Count(), 1);
}

TEST(MetricsRegistryTest, SnapshotSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("b_counter")->Add(1.0);
  reg.GetGauge("a_gauge")->Set(7.0);
  reg.GetHistogram("c_hist")->Record(42);
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a_gauge");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[1].name, "b_counter");
  EXPECT_EQ(snap[2].name, "c_hist");
  ASSERT_NE(snap[2].histogram, nullptr);
  EXPECT_EQ(snap[2].histogram->Count(), 1);
}

TEST(MetricsRegistryTest, SnapshotOrdersNumericLabelsNumerically) {
  // Regression: with >= 10 tenants, lexicographic label comparison
  // exported tenant=10..12 between tenant=1 and tenant=2, so the row
  // order of every per-tenant export silently changed the moment an
  // 11th tenant registered. Numeric-aware ordering keeps exports in
  // tenant-handle order at any scale.
  MetricsRegistry reg;
  for (int64_t t = 12; t >= 1; --t) {
    reg.GetGauge("tenant_queue_depth", Label("tenant", t))
        ->Set(static_cast<double>(t));
  }
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 12u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].labels.Render(),
              "{tenant=" + std::to_string(i + 1) + "}")
        << "row " << i << " out of numeric tenant order";
  }
}

TEST(LabelSetTest, NaturalOrderMixesDigitsAndText) {
  // Digit runs compare as numbers; ties fall back to byte order, and
  // equal values with different renderings ("2" vs "02") stay distinct
  // label sets.
  EXPECT_LT(Label("t", 2), Label("t", 10));
  EXPECT_LT(Label("t", "a2b"), Label("t", "a10b"));
  EXPECT_LT(Label("t", "02"), Label("t", "2"));
  EXPECT_FALSE(Label("t", "2") < Label("t", "02"));
  EXPECT_LT(Label("t", "abc"), Label("t", "abd"));
  EXPECT_LT(Label("t", "ab"), Label("t", "abc"));
  EXPECT_FALSE(Label("t", 3) < Label("t", 3));
}

TEST(MetricsRegistryTest, ResetAllZeroes) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("n");
  Gauge* g = reg.GetGauge("g");
  sim::Histogram* h = reg.GetHistogram("h");
  c->Add(5.0);
  g->Set(5.0);
  h->Record(5);
  reg.ResetAll();
  EXPECT_DOUBLE_EQ(c->value(), 0.0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->Count(), 0);
  EXPECT_EQ(reg.size(), 3u) << "reset clears values, not registrations";
}

TEST(MetricsRegistryTest, KindMismatchDies) {
  MetricsRegistry reg;
  reg.GetCounter("x");
  EXPECT_DEATH(reg.GetGauge("x"), "");
}

TEST(HooksTest, DisabledStructsHaveNullHandles) {
  SchedulerMetrics sm;
  FlashMetrics fm;
  NetMetrics nm;
  EXPECT_FALSE(sm.enabled());
  EXPECT_FALSE(fm.enabled());
  EXPECT_FALSE(nm.enabled());
}

TEST(HooksTest, ForThreadRegistersLabeledMetrics) {
  MetricsRegistry reg;
  SchedulerMetrics m0 = SchedulerMetrics::ForThread(reg, 0);
  SchedulerMetrics m1 = SchedulerMetrics::ForThread(reg, 1);
  ASSERT_TRUE(m0.enabled());
  ASSERT_TRUE(m1.enabled());
  EXPECT_NE(m0.rounds, m1.rounds) << "per-thread instances are distinct";
  m0.tokens_spent->Add(3.0);
  EXPECT_DOUBLE_EQ(
      reg.GetCounter("sched_tokens_spent", Label("thread", 0))->value(),
      3.0);
}

TEST(ExportTest, JsonContainsAllMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("reqs", Label("thread", 0))->Add(12.0);
  reg.GetHistogram("lat_ns")->Record(1500);
  const std::string json = RegistryToJson(reg);
  EXPECT_NE(json.find("\"reqs\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"thread\":\"0\""), std::string::npos);
  EXPECT_NE(json.find("\"lat_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"histogram\""), std::string::npos);
}

TEST(ExportTest, CsvHasHeaderAndRows) {
  MetricsRegistry reg;
  reg.GetCounter("reqs")->Add(2.0);
  const std::string csv = RegistryToCsv(reg);
  EXPECT_EQ(csv.find("name,labels,kind,"), 0u);
  EXPECT_NE(csv.find("reqs,"), std::string::npos);
}

}  // namespace
}  // namespace reflex::obs
