#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "obs/export.h"

namespace reflex::obs {
namespace {

// Builds a fully-marked span with simple round-number stage times.
TraceSpan FullSpan(sim::TimeNs issue = 0) {
  TraceSpan s;
  s.Mark(Stage::kClientIssue, issue);
  s.Mark(Stage::kServerRx, issue + 1000);
  s.Mark(Stage::kParsed, issue + 1500);
  s.Mark(Stage::kEnqueued, issue + 1600);
  s.Mark(Stage::kGranted, issue + 2600);
  s.Mark(Stage::kSubmitted, issue + 2700);
  s.Mark(Stage::kFlashDone, issue + 12700);
  s.Mark(Stage::kTxQueued, issue + 12900);
  s.Mark(Stage::kClientDone, issue + 13900);
  return s;
}

TEST(TraceSpanTest, MarkHasAndTotal) {
  TraceSpan s;
  EXPECT_FALSE(s.Has(Stage::kClientIssue));
  EXPECT_EQ(s.Total(), -1) << "incomplete span has no total";
  s.Mark(Stage::kClientIssue, 100);
  EXPECT_TRUE(s.Has(Stage::kClientIssue));
  EXPECT_EQ(s.At(Stage::kClientIssue), 100);
  EXPECT_EQ(s.Total(), -1) << "still missing kClientDone";
  s.Mark(Stage::kClientDone, 5100);
  EXPECT_EQ(s.Total(), 5000);
}

TEST(TraceSpanTest, StageAndIntervalNamesAreStable) {
  // Exporters and bench consumers key on these strings.
  EXPECT_STREQ(StageName(Stage::kServerRx), "server_rx");
  EXPECT_STREQ(StageName(Stage::kFlashDone), "flash_done");
  EXPECT_STREQ(IntervalName(Stage::kServerRx), "net_in");
  EXPECT_STREQ(IntervalName(Stage::kGranted), "token_wait");
  EXPECT_STREQ(IntervalName(Stage::kFlashDone), "flash");
  EXPECT_STREQ(IntervalName(Stage::kClientDone), "net_out");
}

TEST(TraceSamplerTest, ZeroDisablesOneAlwaysSamples) {
  TraceSampler off(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(off.Sample());
  TraceSampler all(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(all.Sample());
}

TEST(TraceSamplerTest, OneInNIsDeterministicAndExact) {
  TraceSampler s(64);
  int sampled = 0;
  for (int i = 0; i < 64 * 10; ++i) {
    const bool hit = s.Sample();
    if (hit) ++sampled;
    EXPECT_EQ(hit, i % 64 == 0) << "i=" << i;
  }
  EXPECT_EQ(sampled, 10);
}

TEST(TraceCollectorTest, IntervalsTelescopeToTotal) {
  TraceCollector c;
  c.Finish(FullSpan());
  EXPECT_EQ(c.finished(), 1);
  EXPECT_EQ(c.dropped(), 0);
  EXPECT_EQ(c.total().Count(), 1);
  // Every interval histogram got exactly the adjacent-stage delta.
  EXPECT_DOUBLE_EQ(c.interval(Stage::kServerRx).Mean(), 1000.0);
  EXPECT_DOUBLE_EQ(c.interval(Stage::kParsed).Mean(), 500.0);
  EXPECT_DOUBLE_EQ(c.interval(Stage::kGranted).Mean(), 1000.0);
  EXPECT_DOUBLE_EQ(c.interval(Stage::kFlashDone).Mean(), 10000.0);
  double sum = 0.0;
  for (int i = 1; i < kNumStages; ++i) {
    sum += c.interval(static_cast<Stage>(i)).Mean() *
           static_cast<double>(c.interval(static_cast<Stage>(i)).Count());
  }
  EXPECT_DOUBLE_EQ(sum, 13900.0) << "interval sum == end-to-end total";
}

TEST(TraceCollectorTest, SkippedStagesCollapseIntoNextMarked) {
  // An error reply never reaches the flash pipeline: kGranted through
  // kFlashDone are unmarked, so their time lands in the interval ending
  // at the next marked stage (kTxQueued) and the telescoping sum still
  // equals the end-to-end total.
  TraceSpan s;
  s.Mark(Stage::kClientIssue, 0);
  s.Mark(Stage::kServerRx, 1000);
  s.Mark(Stage::kParsed, 1500);
  s.Mark(Stage::kEnqueued, 1600);
  s.Mark(Stage::kTxQueued, 4600);
  s.Mark(Stage::kClientDone, 5600);
  TraceCollector c;
  c.Finish(s);
  EXPECT_EQ(c.finished(), 1);
  EXPECT_EQ(c.interval(Stage::kGranted).Count(), 0);
  EXPECT_EQ(c.interval(Stage::kSubmitted).Count(), 0);
  EXPECT_EQ(c.interval(Stage::kFlashDone).Count(), 0);
  // kEnqueued -> kTxQueued gap (3000ns) attributed to "complete".
  EXPECT_DOUBLE_EQ(c.interval(Stage::kTxQueued).Mean(), 3000.0);
  double sum = 0.0;
  for (int i = 1; i < kNumStages; ++i) {
    const auto& h = c.interval(static_cast<Stage>(i));
    sum += h.Mean() * static_cast<double>(h.Count());
  }
  EXPECT_DOUBLE_EQ(sum, 5600.0);
}

TEST(TraceCollectorTest, IncompleteSpansAreDropped) {
  TraceCollector c;
  TraceSpan no_issue;
  no_issue.Mark(Stage::kClientDone, 100);
  c.Finish(no_issue);
  TraceSpan no_done;
  no_done.Mark(Stage::kClientIssue, 0);
  c.Finish(no_done);
  EXPECT_EQ(c.finished(), 0);
  EXPECT_EQ(c.dropped(), 2);
}

TEST(TraceCollectorTest, ResetFiltersSpansIssuedBeforeWindow) {
  TraceCollector c;
  c.Finish(FullSpan(0));
  EXPECT_EQ(c.finished(), 1);
  // Start a measurement window at t=1ms: history is discarded and
  // spans issued during warmup no longer pollute the window stats.
  c.Reset(/*min_issue=*/1000000);
  EXPECT_EQ(c.finished(), 0);
  EXPECT_EQ(c.total().Count(), 0);
  c.Finish(FullSpan(999999));  // issued 1ns before the window
  EXPECT_EQ(c.finished(), 0);
  EXPECT_EQ(c.dropped(), 1);
  c.Finish(FullSpan(1000000));  // issued exactly at the window start
  EXPECT_EQ(c.finished(), 1);
  // Plain Reset() clears the filter again.
  c.Reset();
  c.Finish(FullSpan(0));
  EXPECT_EQ(c.finished(), 1);
}

TEST(TraceCollectorTest, TableStageSumsReconcileWithTotalMean) {
  TraceCollector c;
  // Mixed population: full spans plus short-circuited ones, different
  // magnitudes, so the reconciliation is not an artifact of identical
  // spans.
  for (int i = 0; i < 50; ++i) c.Finish(FullSpan(i * 1000));
  for (int i = 0; i < 10; ++i) {
    TraceSpan s;
    s.Mark(Stage::kClientIssue, i * 500);
    s.Mark(Stage::kServerRx, i * 500 + 900);
    s.Mark(Stage::kParsed, i * 500 + 1400);
    s.Mark(Stage::kTxQueued, i * 500 + 2000);
    s.Mark(Stage::kClientDone, i * 500 + 3100);
    c.Finish(s);
  }
  const BreakdownTable table = c.Table();
  EXPECT_EQ(table.spans, 60);
  double sum = 0.0;
  for (const BreakdownRow& row : table.rows) sum += row.mean_per_span_us;
  EXPECT_NEAR(sum, table.total_mean_us, 1e-9)
      << "mean_per_span_us column must sum to the end-to-end mean";
  EXPECT_NEAR(table.stage_sum_us, table.total_mean_us, 1e-9);
  double share = 0.0;
  for (const BreakdownRow& row : table.rows) share += row.share_pct;
  EXPECT_NEAR(share, 100.0, 1e-9);
}

TEST(TraceCollectorTest, EmptyTableIsWellFormed) {
  TraceCollector c;
  const BreakdownTable table = c.Table();
  EXPECT_EQ(table.spans, 0);
  EXPECT_TRUE(table.rows.empty());
  EXPECT_DOUBLE_EQ(table.stage_sum_us, 0.0);
}

TEST(TraceExportTest, BreakdownCsvAndJsonCarryIntervalRows) {
  TraceCollector c;
  c.Finish(FullSpan());
  const BreakdownTable table = c.Table();

  const std::string csv = BreakdownToCsv(table, "exp", "lbl");
  EXPECT_EQ(csv.rfind("breakdown,exp,lbl,net_in,", 0), 0u)
      << "rows start with the experiment/label prefix";
  EXPECT_NE(csv.find("breakdown,exp,lbl,flash,"), std::string::npos);
  EXPECT_NE(csv.find("breakdown,exp,lbl,total,"), std::string::npos);

  const std::string json = BreakdownToJson(table, "exp", "lbl");
  EXPECT_NE(json.find("\"experiment\":\"exp\""), std::string::npos);
  EXPECT_NE(json.find("\"interval\":\"token_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"stage_sum_us\""), std::string::npos);
}

}  // namespace
}  // namespace reflex::obs
