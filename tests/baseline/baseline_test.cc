#include <gtest/gtest.h>

#include <memory>

#include "baseline/kernel_server.h"
#include "baseline/local_nvme_driver.h"
#include "baseline/local_spdk.h"
#include "client/flash_service.h"
#include "client/load_generator.h"
#include "client/reflex_client.h"
#include "sim/histogram.h"
#include "testing/harness.h"

namespace reflex::baseline {
namespace {

using client::FlashService;
using client::IoResult;
using sim::Micros;
using sim::Millis;
using sim::TimeNs;
using testing::Harness;

/** QD-1 probe over any FlashService; returns (avg, p95) read us. */
sim::Histogram ProbeReads(Harness& h, FlashService& service, int samples) {
  sim::Histogram hist;
  sim::Rng rng(7, "probe");
  for (int i = 0; i < samples; ++i) {
    const uint64_t lba = rng.NextBounded(1000000) * 8;
    auto f = service.SubmitIo(client::IoDesc::Read(lba, 8));
    EXPECT_TRUE(h.RunUntilReady([&] { return f.Ready(); }));
    hist.Record(f.Get().Latency());
  }
  return hist;
}

sim::Histogram ProbeWrites(Harness& h, FlashService& service, int samples) {
  sim::Histogram hist;
  sim::Rng rng(8, "probe_w");
  for (int i = 0; i < samples; ++i) {
    const uint64_t lba = rng.NextBounded(1000000) * 8;
    auto f = service.SubmitIo(client::IoDesc::Write(lba, 8));
    EXPECT_TRUE(h.RunUntilReady([&] { return f.Ready(); }));
    hist.Record(f.Get().Latency());
  }
  return hist;
}

TEST(BaselineTest, LocalSpdkUnloadedLatencyMatchesTable2) {
  Harness h;
  LocalSpdkService local(h.sim, h.device, LocalSpdkService::Options{});
  auto reads = ProbeReads(h, local, 300);
  // Table 2 Local (SPDK): 78us avg / 90us p95 reads.
  EXPECT_NEAR(reads.Mean() / 1e3, 78.0, 10.0);
  EXPECT_NEAR(reads.Percentile(0.95) / 1e3, 90.0, 14.0);
  auto writes = ProbeWrites(h, local, 300);
  // Table 2 Local: 11us avg / 17us p95 writes.
  EXPECT_NEAR(writes.Mean() / 1e3, 11.0, 4.0);
  EXPECT_LT(writes.Percentile(0.95) / 1e3, 24.0);
}

TEST(BaselineTest, IscsiUnloadedLatencyMatchesTable2) {
  Harness h;
  KernelStorageServer iscsi(h.sim, h.net, h.client_machine,
                            h.server_machine, h.device,
                            BaselineCosts::Iscsi(), 4, "iSCSI");
  auto reads = ProbeReads(h, iscsi, 300);
  // Table 2 iSCSI: 211us avg / 251us p95 reads (2.8x local).
  EXPECT_GT(reads.Mean() / 1e3, 170.0);
  EXPECT_LT(reads.Mean() / 1e3, 245.0);
  auto writes = ProbeWrites(h, iscsi, 300);
  // Table 2 iSCSI: 155us avg writes.
  EXPECT_GT(writes.Mean() / 1e3, 110.0);
  EXPECT_LT(writes.Mean() / 1e3, 185.0);
}

TEST(BaselineTest, LibaioUnloadedLatencyMatchesTable2) {
  Harness h;
  KernelStorageServer libaio(
      h.sim, h.net, h.client_machine, h.server_machine, h.device,
      BaselineCosts::Libaio(net::StackCosts::IxDataplane()), 4,
      "Libaio (IX client)");
  auto reads = ProbeReads(h, libaio, 300);
  // Table 2 Libaio + IX client: 121us avg / 139us p95 reads.
  EXPECT_NEAR(reads.Mean() / 1e3, 121.0, 18.0);
}

TEST(BaselineTest, Table2OrderingHolds) {
  // local < ReFlex(IX) < Libaio(IX) < iSCSI for unloaded reads.
  Harness h;
  LocalSpdkService local(h.sim, h.device, LocalSpdkService::Options{});
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient::Options copts;
  copts.stack = net::StackCosts::IxDataplane();
  client::ReflexClient rclient(h.sim, h.server, h.client_machine, copts);
  auto session = rclient.AttachSession(tenant->handle());
  client::ReflexService reflex(*session);
  KernelStorageServer libaio(
      h.sim, h.net, h.client_machine, h.server_machine, h.device,
      BaselineCosts::Libaio(net::StackCosts::IxDataplane()), 2, "libaio");
  KernelStorageServer iscsi(h.sim, h.net, h.client_machine,
                            h.server_machine, h.device,
                            BaselineCosts::Iscsi(), 2, "iscsi");

  const double local_us = ProbeReads(h, local, 200).Mean() / 1e3;
  const double reflex_us = ProbeReads(h, reflex, 200).Mean() / 1e3;
  const double libaio_us = ProbeReads(h, libaio, 200).Mean() / 1e3;
  const double iscsi_us = ProbeReads(h, iscsi, 200).Mean() / 1e3;

  EXPECT_LT(local_us, reflex_us);
  EXPECT_LT(reflex_us, libaio_us);
  EXPECT_LT(libaio_us, iscsi_us);
  // ReFlex adds ~21us over local (Table 2).
  EXPECT_NEAR(reflex_us - local_us, 21.0, 8.0);
}

sim::Task SaturateService(sim::Simulator& sim, FlashService& service,
                          TimeNs end, int64_t* completed, uint64_t salt) {
  sim::Rng rng(salt, "saturate");
  while (sim.Now() < end) {
    const uint64_t lba = rng.NextBounded(1000000) * 8;
    auto f = co_await service.SubmitIo(client::IoDesc::Read(lba, 2));  // 1KB
    (void)f;
    ++*completed;
  }
}

TEST(BaselineTest, LibaioServerIopsPerCoreNear75K) {
  Harness h;
  KernelStorageServer libaio(
      h.sim, h.net, h.client_machine, h.server_machine, h.device,
      BaselineCosts::Libaio(net::StackCosts::IxDataplane(), 1), 64,
      "libaio");
  int64_t completed = 0;
  const TimeNs end = Millis(300);
  for (int q = 0; q < 256; ++q) {
    SaturateService(h.sim, libaio, end, &completed, q);
  }
  h.sim.RunUntil(end + Millis(100));
  const double iops = static_cast<double>(completed) / sim::ToSeconds(end);
  // Section 5.1/5.3: ~75K IOPS per core for the libaio baseline.
  EXPECT_GT(iops, 55000.0);
  EXPECT_LT(iops, 95000.0);
}

TEST(BaselineTest, LocalSpdkSingleCoreNear870K) {
  Harness h;
  LocalSpdkService::Options o;
  o.num_threads = 1;
  LocalSpdkService local(h.sim, h.device, o);
  int64_t completed = 0;
  const TimeNs end = Millis(200);
  for (int q = 0; q < 512; ++q) {
    SaturateService(h.sim, local, end, &completed, q);
  }
  h.sim.RunUntil(end + Millis(100));
  const double iops = static_cast<double>(completed) / sim::ToSeconds(end);
  // Section 5.3: a single core supports up to 870K IOPS on local Flash.
  EXPECT_GT(iops, 700000.0);
  EXPECT_LT(iops, 1000000.0);
}

TEST(BaselineTest, LocalSpdkTwoCoresSaturateDevice) {
  Harness h;
  LocalSpdkService::Options o;
  o.num_threads = 2;
  LocalSpdkService local(h.sim, h.device, o);
  int64_t completed = 0;
  const TimeNs end = Millis(200);
  for (int q = 0; q < 1024; ++q) {
    SaturateService(h.sim, local, end, &completed, q);
  }
  h.sim.RunUntil(end + Millis(100));
  const double iops = static_cast<double>(completed) / sim::ToSeconds(end);
  // Device A sustains ~1.1M read-only IOPS; two cores saturate it.
  EXPECT_GT(iops, 1000000.0);
}

TEST(BaselineTest, LocalNvmeDriverSlowerThanSpdkButScales) {
  Harness h;
  LocalSpdkService spdk(h.sim, h.device, LocalSpdkService::Options{});
  LocalNvmeDriver kernel(h.sim, h.device, LocalNvmeDriver::Options{});
  const double spdk_us = ProbeReads(h, spdk, 200).Mean() / 1e3;
  const double kernel_us = ProbeReads(h, kernel, 200).Mean() / 1e3;
  EXPECT_GT(kernel_us, spdk_us + 5.0);
  EXPECT_LT(kernel_us, spdk_us + 40.0);
}

}  // namespace
}  // namespace reflex::baseline
