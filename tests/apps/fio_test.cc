#include "apps/fio/fio.h"

#include <gtest/gtest.h>

#include "baseline/local_spdk.h"
#include "client/storage_backend.h"
#include "flash/flash_device.h"
#include "sim/simulator.h"

namespace reflex::apps::fio {
namespace {

using sim::Millis;

class FioTest : public ::testing::Test {
 protected:
  FioTest()
      : device_(sim_, flash::DeviceProfile::DeviceA(), 9),
        local_(sim_, device_, baseline::LocalSpdkService::Options{2, sim::TimeNs(1150), 33}),
        backend_(local_, 64ULL << 30) {}

  FioResult RunJob(FioJob job, sim::TimeNs warm = Millis(20),
                   sim::TimeNs end = Millis(120)) {
    FioRunner runner(sim_, backend_, job);
    // Windows are relative to the current simulation time so several
    // jobs can run back to back in one fixture.
    runner.Run(sim_.Now() + warm, sim_.Now() + end);
    auto done = runner.Done();
    while (!done.Ready()) sim_.RunUntil(sim_.Now() + Millis(5));
    return runner.result();
  }

  sim::Simulator sim_;
  flash::FlashDevice device_;
  baseline::LocalSpdkService local_;
  client::ServiceStorageAdapter backend_;
};

TEST_F(FioTest, RandReadProducesThroughputAndLatency) {
  FioJob job;
  job.num_threads = 2;
  job.queue_depth = 16;
  job.read_fraction = 1.0;
  FioResult r = RunJob(job);
  EXPECT_GT(r.iops, 10000.0);
  EXPECT_GT(r.read_latency.Count(), 100);
  EXPECT_EQ(r.errors, 0);
  // Throughput consistent with IOPS * block size.
  EXPECT_NEAR(r.throughput_mb_s, r.iops * 4096 / 1e6,
              r.throughput_mb_s * 0.02);
}

TEST_F(FioTest, HigherQueueDepthRaisesThroughputAndLatency) {
  FioJob low;
  low.queue_depth = 1;
  FioJob high;
  high.queue_depth = 64;
  FioResult rl = RunJob(low);
  FioResult rh = RunJob(high);
  EXPECT_GT(rh.iops, 5.0 * rl.iops);
  EXPECT_GT(rh.read_latency.Percentile(0.95),
            rl.read_latency.Percentile(0.95));
}

TEST_F(FioTest, MixedWorkloadRecordsBothDirections) {
  FioJob job;
  job.read_fraction = 0.5;
  job.queue_depth = 8;
  FioResult r = RunJob(job);
  EXPECT_GT(r.read_latency.Count(), 0);
  EXPECT_GT(r.write_latency.Count(), 0);
  // Writes ack from the buffer: much faster than reads at low load.
  EXPECT_LT(r.write_latency.Mean(), r.read_latency.Mean());
}

TEST_F(FioTest, SequentialModeCoversSpanInOrder) {
  FioJob job;
  job.sequential = true;
  job.num_threads = 1;
  job.queue_depth = 1;
  job.span = 1ULL << 20;
  FioResult r = RunJob(job, Millis(5), Millis(40));
  EXPECT_GT(r.iops, 1000.0);
  EXPECT_EQ(r.errors, 0);
}

}  // namespace
}  // namespace reflex::apps::fio
