#include "apps/graph/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <queue>
#include <stack>

#include "apps/graph/graph_gen.h"
#include "apps/graph/graph_store.h"
#include "baseline/local_spdk.h"
#include "client/storage_backend.h"
#include "flash/flash_device.h"
#include "sim/simulator.h"

namespace reflex::apps::graph {
namespace {

// ---------------------------------------------------------------------
// In-memory reference implementations.
// ---------------------------------------------------------------------

std::vector<uint32_t> ReferenceWcc(uint32_t n,
                                   const std::vector<Edge>& edges) {
  std::vector<uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : edges) {
    uint32_t a = find(e.first), b = find(e.second);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  // Min vertex id per component, matching label propagation's fixpoint.
  std::vector<uint32_t> min_of_root(n, UINT32_MAX);
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t root = find(v);
    min_of_root[root] = std::min(min_of_root[root], v);
  }
  std::vector<uint32_t> label(n);
  for (uint32_t v = 0; v < n; ++v) label[v] = min_of_root[find(v)];
  return label;
}

std::vector<int32_t> ReferenceBfs(uint32_t n, const std::vector<Edge>& edges,
                                  uint32_t src) {
  std::vector<std::vector<uint32_t>> adj(n);
  for (const Edge& e : edges) adj[e.first].push_back(e.second);
  std::vector<int32_t> level(n, -1);
  std::queue<uint32_t> q;
  level[src] = 0;
  q.push(src);
  while (!q.empty()) {
    uint32_t v = q.front();
    q.pop();
    for (uint32_t u : adj[v]) {
      if (level[u] == -1) {
        level[u] = level[v] + 1;
        q.push(u);
      }
    }
  }
  return level;
}

std::vector<double> ReferencePageRank(uint32_t n,
                                      const std::vector<Edge>& edges,
                                      int iters, double d) {
  std::vector<std::vector<uint32_t>> radj(n);
  std::vector<uint32_t> outdeg(n, 0);
  for (const Edge& e : edges) {
    radj[e.second].push_back(e.first);
    ++outdeg[e.first];
  }
  std::vector<double> rank(n, 1.0 / n), next(n);
  for (int it = 0; it < iters; ++it) {
    for (uint32_t v = 0; v < n; ++v) {
      double acc = 0;
      for (uint32_t u : radj[v]) {
        if (outdeg[u] > 0) acc += rank[u] / outdeg[u];
      }
      next[v] = (1.0 - d) / n + d * acc;
    }
    rank.swap(next);
  }
  return rank;
}

int ReferenceSccCount(uint32_t n, const std::vector<Edge>& edges) {
  // Kosaraju, recursive-free.
  std::vector<std::vector<uint32_t>> adj(n), radj(n);
  for (const Edge& e : edges) {
    adj[e.first].push_back(e.second);
    radj[e.second].push_back(e.first);
  }
  std::vector<bool> visited(n, false);
  std::vector<uint32_t> order;
  for (uint32_t s = 0; s < n; ++s) {
    if (visited[s]) continue;
    std::stack<std::pair<uint32_t, size_t>> st;
    st.push({s, 0});
    visited[s] = true;
    while (!st.empty()) {
      auto& [v, i] = st.top();
      if (i < adj[v].size()) {
        uint32_t u = adj[v][i++];
        if (!visited[u]) {
          visited[u] = true;
          st.push({u, 0});
        }
      } else {
        order.push_back(v);
        st.pop();
      }
    }
  }
  std::vector<int> comp(n, -1);
  int count = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (comp[*it] != -1) continue;
    int c = count++;
    std::stack<uint32_t> st;
    st.push(*it);
    comp[*it] = c;
    while (!st.empty()) {
      uint32_t v = st.top();
      st.pop();
      for (uint32_t u : radj[v]) {
        if (comp[u] == -1) {
          comp[u] = c;
          st.push(u);
        }
      }
    }
  }
  return count;
}

// ---------------------------------------------------------------------
// Fixture: a small graph on a local-SPDK backend.
// ---------------------------------------------------------------------

class GraphEngineTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kN = 2000;
  static constexpr uint64_t kM = 12000;

  GraphEngineTest()
      : device_(sim_, flash::DeviceProfile::DeviceA(), 3),
        local_(sim_, device_, baseline::LocalSpdkService::Options{}),
        backend_(local_, 64ULL << 30),
        edges_(GenerateRmat(kN, kM, 99)) {
    auto meta_future =
        BuildGraphOnFlash(sim_, backend_, edges_, kN, /*base=*/4096 * 16);
    sim_.Run();
    meta_ = meta_future.Get();
    GraphEngine::Options options;
    options.cache_pages = 64;
    options.workers = 8;
    engine_ = std::make_unique<GraphEngine>(sim_, backend_, meta_, options);
    auto init = engine_->Init();
    sim_.Run();
    EXPECT_TRUE(init.Ready());
  }

  template <typename T>
  T Await(sim::Future<T> f) {
    sim_.Run();
    EXPECT_TRUE(f.Ready());
    return f.Get();
  }

  sim::Simulator sim_;
  flash::FlashDevice device_;
  baseline::LocalSpdkService local_;
  client::ServiceStorageAdapter backend_;
  std::vector<Edge> edges_;
  GraphMeta meta_;
  std::unique_ptr<GraphEngine> engine_;
};

TEST_F(GraphEngineTest, WccMatchesUnionFind) {
  auto stats = Await(engine_->RunWcc());
  const std::vector<uint32_t> expected = ReferenceWcc(kN, edges_);
  EXPECT_EQ(engine_->labels(), expected);
  EXPECT_GT(stats.exec_time, 0);
  EXPECT_GT(stats.edges_scanned, 0);
  EXPECT_GT(stats.flash_reads, 0);
}

TEST_F(GraphEngineTest, BfsMatchesReference) {
  auto stats = Await(engine_->RunBfs(0));
  const std::vector<int32_t> expected = ReferenceBfs(kN, edges_, 0);
  EXPECT_EQ(engine_->bfs_levels(), expected);
  uint64_t reached = 0;
  for (int32_t l : expected) reached += (l >= 0);
  EXPECT_EQ(stats.result_value, reached);
}

TEST_F(GraphEngineTest, PageRankMatchesReference) {
  auto stats = Await(engine_->RunPageRank(5));
  const std::vector<double> expected =
      ReferencePageRank(kN, edges_, 5, 0.85);
  ASSERT_EQ(engine_->ranks().size(), expected.size());
  for (uint32_t v = 0; v < kN; ++v) {
    EXPECT_NEAR(engine_->ranks()[v], expected[v], 1e-12) << "v=" << v;
  }
  EXPECT_EQ(stats.iterations, 5);
}

TEST_F(GraphEngineTest, SccMatchesReference) {
  auto stats = Await(engine_->RunScc());
  EXPECT_EQ(stats.result_value,
            static_cast<uint64_t>(ReferenceSccCount(kN, edges_)));
  // Every vertex is assigned a component.
  for (int32_t c : engine_->scc_ids()) EXPECT_GE(c, 0);
}

TEST_F(GraphEngineTest, SmallCacheCausesFlashReads) {
  auto stats = Await(engine_->RunWcc());
  // Two full edge scans per iteration with a 64-page cache over a
  // ~24-page-per-direction edge section: expect misses but also reuse.
  EXPECT_GT(stats.flash_reads, 0);
}

TEST(GraphGenTest, RmatProducesRequestedEdges) {
  auto edges = GenerateRmat(1024, 5000, 7);
  EXPECT_EQ(edges.size(), 5000u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.first, 1024u);
    EXPECT_LT(e.second, 1024u);
    EXPECT_NE(e.first, e.second);
  }
}

TEST(GraphGenTest, RmatIsSkewed) {
  auto edges = GenerateRmat(4096, 40000, 11);
  std::vector<int> outdeg(4096, 0);
  for (const Edge& e : edges) ++outdeg[e.first];
  const int max_deg = *std::max_element(outdeg.begin(), outdeg.end());
  // Power-law-ish: the hottest vertex far exceeds the mean (~10).
  EXPECT_GT(max_deg, 100);
}

TEST(GraphGenTest, Deterministic) {
  EXPECT_EQ(GenerateRmat(512, 1000, 42), GenerateRmat(512, 1000, 42));
  EXPECT_NE(GenerateRmat(512, 1000, 42), GenerateRmat(512, 1000, 43));
}

}  // namespace
}  // namespace reflex::apps::graph
