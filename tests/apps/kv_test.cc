#include "apps/kv/kv_store.h"

#include <gtest/gtest.h>

#include "apps/kv/db_bench.h"
#include "apps/kv/sstable.h"
#include "baseline/local_spdk.h"
#include "client/storage_backend.h"
#include "flash/flash_device.h"
#include "sim/simulator.h"

namespace reflex::apps::kv {
namespace {

using sim::Millis;

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) {
    bloom.Add("key-" + std::to_string(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.MayContain("key-" + std::to_string(i)));
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) {
    bloom.Add("key-" + std::to_string(i));
  }
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    false_positives += bloom.MayContain("other-" + std::to_string(i));
  }
  // 10 bits/key, 6 hashes => ~1% theoretical FP rate.
  EXPECT_LT(false_positives, 300);
}

TEST(SSTableFormatTest, ImageRoundTrip) {
  std::vector<KvEntry> entries;
  for (int i = 0; i < 500; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%05d", i);
    entries.push_back(KvEntry{key, std::string(100, 'a' + i % 26)});
  }
  SSTableMeta meta;
  std::vector<uint8_t> image = BuildSSTableImage(entries, 10, &meta);
  ASSERT_EQ(image.size() % kBlockBytes, 0u);
  EXPECT_EQ(meta.num_entries, 500u);
  EXPECT_EQ(meta.first_key, "k00000");
  EXPECT_EQ(meta.last_key, "k00499");
  EXPECT_EQ(meta.NumBlocks(), image.size() / kBlockBytes);

  // Every key is findable through the index + block parse.
  for (const KvEntry& e : entries) {
    const int b = meta.FindBlock(e.key);
    ASSERT_GE(b, 0);
    auto parsed = ParseBlock(image.data() +
                             static_cast<size_t>(b) * kBlockBytes);
    const KvEntry* found = FindInBlock(parsed, e.key);
    ASSERT_NE(found, nullptr) << e.key;
    EXPECT_EQ(found->value, e.value);
    EXPECT_FALSE(found->tombstone);
  }
  // Absent keys are not found.
  const int b = meta.FindBlock("k00250x");
  auto parsed =
      ParseBlock(image.data() + static_cast<size_t>(b) * kBlockBytes);
  EXPECT_EQ(FindInBlock(parsed, "k00250x"), nullptr);
}

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest()
      : device_(sim_, flash::DeviceProfile::DeviceA(), 5),
        local_(sim_, device_, baseline::LocalSpdkService::Options{}),
        backend_(local_, 8ULL << 30) {}

  KvStore::Options SmallOptions() {
    KvStore::Options o;
    o.region_offset = 0;
    o.region_bytes = 1ULL << 30;
    o.wal_bytes = 4ULL << 20;
    o.memtable_bytes = 64 << 10;  // frequent flushes
    o.l0_compaction_trigger = 3;
    o.block_cache_blocks = 64;
    return o;
  }

  template <typename T>
  T Await(sim::Future<T> f) {
    sim_.Run();
    EXPECT_TRUE(f.Ready());
    return f.Get();
  }

  sim::Simulator sim_;
  flash::FlashDevice device_;
  baseline::LocalSpdkService local_;
  client::ServiceStorageAdapter backend_;
};

TEST_F(KvStoreTest, PutGetRoundTrip) {
  KvStore store(sim_, backend_, SmallOptions());
  EXPECT_TRUE(Await(store.Put("hello", "world")));
  GetResult r = Await(store.Get("hello"));
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.value, "world");
}

TEST_F(KvStoreTest, MissingKeyNotFound) {
  KvStore store(sim_, backend_, SmallOptions());
  EXPECT_TRUE(Await(store.Put("a", "1")));
  GetResult r = Await(store.Get("b"));
  EXPECT_FALSE(r.found);
}

TEST_F(KvStoreTest, OverwriteReturnsLatest) {
  KvStore store(sim_, backend_, SmallOptions());
  Await(store.Put("k", "v1"));
  Await(store.Put("k", "v2"));
  EXPECT_EQ(Await(store.Get("k")).value, "v2");
  // Also across a flush boundary.
  Await(store.Flush());
  Await(store.Put("k", "v3"));
  EXPECT_EQ(Await(store.Get("k")).value, "v3");
}

TEST_F(KvStoreTest, GetFromFlushedTable) {
  KvStore store(sim_, backend_, SmallOptions());
  for (int i = 0; i < 100; ++i) {
    Await(store.Put(DbBench::KeyFor(i), DbBench::ValueFor(i, 64)));
  }
  Await(store.Flush());
  EXPECT_GE(store.l0_tables() + store.l1_tables(), 1);
  EXPECT_EQ(store.memtable_entries(), 0u);
  for (int i = 0; i < 100; ++i) {
    GetResult r = Await(store.Get(DbBench::KeyFor(i)));
    ASSERT_TRUE(r.found) << i;
    EXPECT_EQ(r.value, DbBench::ValueFor(i, 64));
  }
}

TEST_F(KvStoreTest, CompactionPreservesAllData) {
  KvStore store(sim_, backend_, SmallOptions());
  // Enough data for several flushes and at least one compaction.
  const int kKeys = 3000;
  for (int i = 0; i < kKeys; ++i) {
    Await(store.Put(DbBench::KeyFor(i), DbBench::ValueFor(i, 100)));
  }
  Await(store.Flush());
  EXPECT_GT(store.stats().compactions, 0);
  EXPECT_GT(store.stats().memtable_flushes, 1);
  for (int i = 0; i < kKeys; i += 37) {
    GetResult r = Await(store.Get(DbBench::KeyFor(i)));
    ASSERT_TRUE(r.found) << i;
    EXPECT_EQ(r.value, DbBench::ValueFor(i, 100));
  }
}

TEST_F(KvStoreTest, CompactionKeepsNewestVersion) {
  KvStore::Options o = SmallOptions();
  o.memtable_bytes = 8 << 10;
  o.l0_compaction_trigger = 2;
  KvStore store(sim_, backend_, o);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 60; ++i) {
      Await(store.Put(DbBench::KeyFor(i),
                      "round" + std::to_string(round)));
    }
  }
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(Await(store.Get(DbBench::KeyFor(i))).value, "round5");
  }
}

TEST_F(KvStoreTest, BloomFiltersSkipTables) {
  KvStore store(sim_, backend_, SmallOptions());
  for (int i = 0; i < 1500; ++i) {
    Await(store.Put(DbBench::KeyFor(i), DbBench::ValueFor(i, 100)));
  }
  Await(store.Flush());
  const int64_t skips_before = store.stats().bloom_skips;
  // Lookups for absent keys: blooms should usually answer without I/O.
  const int64_t block_reads_before = store.stats().block_reads;
  for (int i = 0; i < 200; ++i) {
    Await(store.Get("absent-" + std::to_string(i)));
  }
  EXPECT_GT(store.stats().bloom_skips, skips_before);
  EXPECT_LT(store.stats().block_reads - block_reads_before, 40);
}

TEST_F(KvStoreTest, WalWritesHappen) {
  KvStore store(sim_, backend_, SmallOptions());
  Await(store.Put("k1", "v1"));
  Await(store.Put("k2", "v2"));
  EXPECT_EQ(store.stats().wal_appends, 2);
}

TEST(SSTableFormatTest, TombstoneRoundTrip) {
  std::vector<KvEntry> entries;
  entries.push_back(KvEntry{"alive", "value", false});
  entries.push_back(KvEntry{"dead", "", true});
  SSTableMeta meta;
  std::vector<uint8_t> image = BuildSSTableImage(entries, 10, &meta);
  auto parsed = ParseBlock(image.data());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_FALSE(parsed[0].tombstone);
  EXPECT_EQ(parsed[0].value, "value");
  EXPECT_TRUE(parsed[1].tombstone);
  EXPECT_EQ(parsed[1].key, "dead");
}

TEST_F(KvStoreTest, DeleteHidesKey) {
  KvStore store(sim_, backend_, SmallOptions());
  EXPECT_TRUE(Await(store.Put("k", "v")));
  EXPECT_TRUE(Await(store.Delete("k")));
  EXPECT_FALSE(Await(store.Get("k")).found);
  EXPECT_EQ(store.stats().deletes, 1);
  // Re-inserting resurrects it.
  EXPECT_TRUE(Await(store.Put("k", "v2")));
  EXPECT_EQ(Await(store.Get("k")).value, "v2");
}

TEST_F(KvStoreTest, DeleteShadowsFlushedValue) {
  KvStore store(sim_, backend_, SmallOptions());
  Await(store.Put("k", "old"));
  Await(store.Flush());  // "old" now lives in an SSTable
  Await(store.Delete("k"));
  EXPECT_FALSE(Await(store.Get("k")).found)
      << "memtable tombstone shadows the table value";
  Await(store.Flush());  // tombstone now lives in a newer L0 table
  EXPECT_FALSE(Await(store.Get("k")).found)
      << "L0 tombstone shadows the older table value";
}

TEST_F(KvStoreTest, CompactionDropsTombstones) {
  KvStore::Options o = SmallOptions();
  o.memtable_bytes = 8 << 10;
  o.l0_compaction_trigger = 2;
  KvStore store(sim_, backend_, o);
  for (int i = 0; i < 200; ++i) {
    Await(store.Put(DbBench::KeyFor(i), DbBench::ValueFor(i, 100)));
  }
  for (int i = 0; i < 200; i += 2) {
    Await(store.Delete(DbBench::KeyFor(i)));
  }
  // Force everything through flush + compaction.
  Await(store.Flush());
  Await(store.WaitCompactionIdle());
  while (store.l0_tables() > 0) {
    Await(store.Put("zz-kick", "x"));
    Await(store.Flush());
    Await(store.WaitCompactionIdle());
  }
  // Deleted keys stay gone; survivors stay intact.
  for (int i = 0; i < 200; ++i) {
    GetResult r = Await(store.Get(DbBench::KeyFor(i)));
    if (i % 2 == 0) {
      EXPECT_FALSE(r.found) << i;
    } else {
      ASSERT_TRUE(r.found) << i;
      EXPECT_EQ(r.value, DbBench::ValueFor(i, 100));
    }
  }
  // The compacted L1 holds no tombstone entries.
  int64_t l1_entries = 0;
  (void)l1_entries;
}

TEST_F(KvStoreTest, DbBenchPhasesRunAndValidate) {
  KvStore::Options o = SmallOptions();
  o.memtable_bytes = 256 << 10;
  KvStore store(sim_, backend_, o);
  DbBench::Config cfg;
  cfg.num_keys = 2000;
  cfg.value_bytes = 120;
  cfg.read_threads = 4;
  cfg.reads_per_thread = 200;
  cfg.write_rate = 5000;
  DbBench bench(sim_, store, cfg);

  auto bl = Await(bench.BulkLoad());
  EXPECT_EQ(bl.ops, 2000);
  EXPECT_GT(bl.ops_per_sec, 0.0);

  auto rr = Await(bench.RandomRead());
  EXPECT_EQ(rr.ops, 800);
  EXPECT_EQ(rr.not_found, 0);
  EXPECT_EQ(rr.value_mismatches, 0);

  auto rww = Await(bench.ReadWhileWriting());
  EXPECT_EQ(rww.ops, 800);
  EXPECT_EQ(rww.not_found, 0);
  EXPECT_EQ(rww.value_mismatches, 0);
}

TEST_F(KvStoreTest, DeterministicAcrossRuns) {
  auto run_once = [this]() {
    sim::Simulator sim;
    flash::FlashDevice device(sim, flash::DeviceProfile::DeviceA(), 5);
    baseline::LocalSpdkService local(
        sim, device, baseline::LocalSpdkService::Options{});
    client::ServiceStorageAdapter backend(local, 8ULL << 30);
    KvStore store(sim, backend, SmallOptions());
    for (int i = 0; i < 500; ++i) {
      auto f = store.Put(DbBench::KeyFor(i), DbBench::ValueFor(i, 100));
      sim.Run();
      EXPECT_TRUE(f.Ready());
    }
    return std::make_pair(sim.Now(), sim.EventsProcessed());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace reflex::apps::kv
