// MigrationCoordinator end-to-end: copy-then-forward preserves data
// across a live range handoff, writes racing the copy are recopied,
// failures abort with the source still authoritative, concurrent
// batches are refused, and the SLO-aware autoscaler resizes the
// active set hitlessly through the coordinator.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "client/load_generator.h"
#include "cluster/cluster_client.h"
#include "cluster/cluster_control_plane.h"
#include "cluster/migration.h"
#include "cluster/shard_map.h"
#include "sim/fault.h"
#include "testing/cluster_harness.h"

namespace reflex {
namespace {

using cluster::ClusterControlPlane;
using cluster::FlashClusterOptions;
using cluster::MigrationCoordinator;
using core::SloSpec;
using core::TenantClass;
using testing::ClusterHarness;

constexpr uint32_t kStripeSectors = 8;

FlashClusterOptions MobileOptions(int num_shards, int replication = 1,
                                  uint32_t migration_slots = 8) {
  FlashClusterOptions options =
      ClusterHarness::MakeOptions(num_shards, kStripeSectors, replication);
  options.shard_map.migration_slots = migration_slots;
  return options;
}

std::vector<uint8_t> Pattern(size_t bytes, uint8_t salt) {
  std::vector<uint8_t> out(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<uint8_t>((i * 131 + salt) & 0xff);
  }
  return out;
}

template <typename T>
bool Await(ClusterHarness& h, const sim::Future<T>& f,
           sim::TimeNs deadline = sim::Seconds(30)) {
  return h.RunUntilReady([&f] { return f.Ready(); }, deadline);
}

TEST(MigrationTest, LiveRangeMigrationPreservesDataAndFlipsTheMapOnce) {
  ClusterHarness h(MobileOptions(2));
  MigrationCoordinator coordinator(h.cluster, h.net);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  // Stripes 0 and 2 live on shard 0 (striped, 2 shards).
  const auto a = Pattern(kStripeSectors * core::kSectorBytes, 3);
  const auto b = Pattern(kStripeSectors * core::kSectorBytes, 7);
  auto w0 = session->Write(0, kStripeSectors,
                           const_cast<uint8_t*>(a.data()));
  auto w2 = session->Write(2 * kStripeSectors, kStripeSectors,
                           const_cast<uint8_t*>(b.data()));
  ASSERT_TRUE(Await(h, w0) && w0.Get().ok());
  ASSERT_TRUE(Await(h, w2) && w2.Get().ok());

  auto done = coordinator.MigrateRange(0, 1, 0, 3);
  ASSERT_TRUE(Await(h, done));
  EXPECT_TRUE(done.Get());
  EXPECT_EQ(coordinator.stats().migrations_committed, 1);
  EXPECT_EQ(coordinator.stats().migrations_aborted, 0);
  EXPECT_EQ(coordinator.stats().stripes_moved, 2);
  EXPECT_EQ(h.cluster.shard_map().epoch(), 1u);
  EXPECT_EQ(h.cluster.shard_map().num_overrides(), 2u);
  EXPECT_EQ(h.cluster.shard_map().ShardIndexForStripe(0), 1);
  EXPECT_EQ(h.cluster.shard_map().ShardIndexForStripe(2), 1);
  // The moved ranges stay guarded on the source: stale-mapped traffic
  // must bounce, not read pre-migration bytes.
  EXPECT_TRUE(h.cluster.server(0).HasRangeGates());

  h.client.RefreshMap();
  std::vector<uint8_t> in(a.size(), 0);
  auto r0 = session->Read(0, kStripeSectors, in.data());
  ASSERT_TRUE(Await(h, r0) && r0.Get().ok());
  EXPECT_EQ(std::memcmp(in.data(), a.data(), in.size()), 0);
  auto r2 = session->Read(2 * kStripeSectors, kStripeSectors, in.data());
  ASSERT_TRUE(Await(h, r2) && r2.Get().ok());
  EXPECT_EQ(std::memcmp(in.data(), b.data(), in.size()), 0);
}

// A client write admitted during the copy window (the before_cutover
// race point) dirties the gate and must reach the target via a recopy
// round -- losing it is exactly the drop_forwarded_write mutation.
TEST(MigrationTest, WriteRacingTheCopyIsRecopiedToTheTarget) {
  ClusterHarness h(MobileOptions(2));
  MigrationCoordinator coordinator(h.cluster, h.net);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  const auto old_data = Pattern(kStripeSectors * core::kSectorBytes, 11);
  const auto new_data = Pattern(kStripeSectors * core::kSectorBytes, 42);
  auto seed_write = session->Write(0, kStripeSectors,
                                   const_cast<uint8_t*>(old_data.data()));
  ASSERT_TRUE(Await(h, seed_write) && seed_write.Get().ok());

  coordinator.before_cutover = [&]() {
    // Issued through the still-stale client map: routed to the source,
    // admitted by the kCopying gate, counted and dirty-tracked.
    return session->Write(0, kStripeSectors,
                          const_cast<uint8_t*>(new_data.data()));
  };
  auto done = coordinator.MigrateRange(0, 1, 0, 1);
  ASSERT_TRUE(Await(h, done));
  EXPECT_TRUE(done.Get());
  EXPECT_GE(coordinator.stats().dirty_recopies, 1)
      << "the raced write must force a recopy round";

  h.client.RefreshMap();
  std::vector<uint8_t> in(new_data.size(), 0);
  auto read = session->Read(0, kStripeSectors, in.data());
  ASSERT_TRUE(Await(h, read) && read.Get().ok());
  EXPECT_EQ(std::memcmp(in.data(), new_data.data(), in.size()), 0)
      << "the target must hold the write that raced the copy";
}

TEST(MigrationTest, SecondBatchWhileBusyIsRefusedWithoutLeakingSlots) {
  ClusterHarness h(MobileOptions(2, 1, /*migration_slots=*/8));
  MigrationCoordinator coordinator(h.cluster, h.net);

  auto first = coordinator.MigrateRange(0, 1, 0, 1);
  EXPECT_TRUE(coordinator.busy());
  auto second = coordinator.MigrateRange(0, 1, 2, 1);

  ASSERT_TRUE(Await(h, second));
  EXPECT_FALSE(second.Get()) << "one batch at a time";
  ASSERT_TRUE(Await(h, first));
  EXPECT_TRUE(first.Get());
  EXPECT_EQ(coordinator.stats().migrations_started, 1);
  EXPECT_EQ(coordinator.stats().migrations_committed, 1);
  // Only the committed batch's override holds a landing slot; the
  // refused plan's reservation was released.
  EXPECT_EQ(h.cluster.shard_map().num_overrides(), 1u);
  EXPECT_EQ(h.cluster.shard_map().FreeMigrationSlots(1), 7u);

  // The coordinator is reusable once idle.
  auto third = coordinator.MigrateRange(0, 1, 2, 1);
  ASSERT_TRUE(Await(h, third));
  EXPECT_TRUE(third.Get());
}

TEST(MigrationTest, CopyFailureAbortsAndTheSourceStaysAuthoritative) {
  ClusterHarness h(MobileOptions(2));
  // Every copy write to the target fails for the whole test window.
  sim::FaultPlan plan(h.sim, 17);
  h.cluster.server(1).SetFaultPlan(&plan);
  plan.ScheduleWindow(sim::FaultKind::kServerDeviceError, sim::Micros(1),
                      sim::Seconds(30));
  MigrationCoordinator coordinator(h.cluster, h.net);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  // Seed only stripe 0 (shard 0) -- shard 1 is the faulty target.
  const auto data = Pattern(kStripeSectors * core::kSectorBytes, 23);
  auto write = session->Write(0, kStripeSectors,
                              const_cast<uint8_t*>(data.data()));
  ASSERT_TRUE(Await(h, write) && write.Get().ok());

  auto done = coordinator.MigrateRange(0, 1, 0, 1);
  ASSERT_TRUE(Await(h, done));
  EXPECT_FALSE(done.Get());
  EXPECT_EQ(coordinator.stats().migrations_aborted, 1);
  EXPECT_EQ(coordinator.stats().migrations_committed, 0);
  // Abort is invisible: no epoch bump, no overrides, no gates, every
  // landing slot free -- and the source still serves current data.
  EXPECT_EQ(h.cluster.shard_map().epoch(), 0u);
  EXPECT_EQ(h.cluster.shard_map().num_overrides(), 0u);
  EXPECT_EQ(h.cluster.shard_map().FreeMigrationSlots(1), 8u);
  EXPECT_FALSE(h.cluster.server(0).HasRangeGates());

  std::vector<uint8_t> in(data.size(), 0);
  auto read = session->Read(0, kStripeSectors, in.data());
  ASSERT_TRUE(Await(h, read) && read.Get().ok());
  EXPECT_EQ(std::memcmp(in.data(), data.data(), in.size()), 0);
}

TEST(MigrationTest, EmptyPlanResolvesFalseImmediately) {
  ClusterHarness h(MobileOptions(2));
  MigrationCoordinator coordinator(h.cluster, h.net);
  auto none = coordinator.MigrateAssignments({});
  ASSERT_TRUE(Await(h, none));
  EXPECT_FALSE(none.Get());
  EXPECT_FALSE(coordinator.busy());
  EXPECT_EQ(coordinator.stats().migrations_started, 0);
}

// Idle cluster, shrink-happy thresholds: the autoscaler packs the hot
// range onto the floor-size prefix through live migrations, and the
// data written before the resize survives byte-exact.
TEST(MigrationTest, AutoscalerShrinksIdleClusterToFloorAndKeepsData) {
  ClusterHarness h(MobileOptions(3, 1, /*migration_slots=*/32));
  MigrationCoordinator coordinator(h.cluster, h.net);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  const uint64_t kHotStripes = 6;
  const auto data =
      Pattern(kHotStripes * kStripeSectors * core::kSectorBytes, 29);
  auto write =
      session->Write(0, static_cast<uint32_t>(kHotStripes * kStripeSectors),
                     const_cast<uint8_t*>(data.data()));
  ASSERT_TRUE(Await(h, write) && write.Get().ok());

  ClusterControlPlane::AutoscalerOptions aopts;
  aopts.period = sim::Millis(1);
  aopts.high_utilization = 2.0;  // unreachable: never grow
  aopts.low_utilization = 2.0;   // idle always reads as underloaded
  aopts.hot_first_stripe = 0;
  aopts.hot_stripes = kHotStripes;
  ClusterControlPlane& cp = h.cluster.control_plane();
  EXPECT_EQ(cp.active_shards(), 0) << "no autoscaler, no active set yet";
  cp.StartAutoscaler(coordinator, aopts);

  ASSERT_TRUE(h.RunUntilReady(
      [&] { return cp.active_shards() == 1 && !coordinator.busy(); },
      sim::Seconds(5)));
  cp.StopAutoscaler();
  EXPECT_GE(cp.autoscaler_stats().shrink_events, 2);
  EXPECT_GE(cp.autoscaler_stats().rebalances, 1);
  EXPECT_GT(h.cluster.shard_map().epoch(), 0u);
  for (uint64_t s = 0; s < kHotStripes; ++s) {
    EXPECT_EQ(h.cluster.shard_map().ShardIndexForStripe(s), 0)
        << "hot stripe " << s << " not packed onto the active prefix";
  }

  h.client.RefreshMap();
  std::vector<uint8_t> in(data.size(), 0);
  auto read =
      session->Read(0, static_cast<uint32_t>(kHotStripes * kStripeSectors),
                    in.data());
  ASSERT_TRUE(Await(h, read) && read.Get().ok());
  EXPECT_EQ(std::memcmp(in.data(), data.data(), in.size()), 0);
}

// With replication the active set must never drop below R: every hot
// stripe keeps R placements on R distinct shards.
TEST(MigrationTest, AutoscalerShrinkRespectsTheReplicationFloor) {
  ClusterHarness h(MobileOptions(3, /*replication=*/2,
                                 /*migration_slots=*/32));
  MigrationCoordinator coordinator(h.cluster, h.net);

  ClusterControlPlane::AutoscalerOptions aopts;
  aopts.period = sim::Millis(1);
  aopts.high_utilization = 2.0;
  aopts.low_utilization = 2.0;
  aopts.hot_stripes = 6;
  ClusterControlPlane& cp = h.cluster.control_plane();
  cp.StartAutoscaler(coordinator, aopts);

  ASSERT_TRUE(h.RunUntilReady(
      [&] { return cp.active_shards() == 2 && !coordinator.busy(); },
      sim::Seconds(5)));
  // Give the loop more periods: it must hold at the floor.
  h.sim.RunUntil(h.sim.Now() + sim::Millis(20));
  cp.StopAutoscaler();
  EXPECT_EQ(cp.active_shards(), 2);
  for (uint64_t s = 0; s < 6; ++s) {
    const auto targets = h.cluster.shard_map().ReplicasForStripe(s);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_NE(targets[0].shard_index, targets[1].shard_index);
    EXPECT_LT(targets[0].shard_index, 2);
    EXPECT_LT(targets[1].shard_index, 2);
  }
}

// Shrink when idle, then grow back under real load: the full elastic
// round trip, all placement changes riding live migrations.
TEST(MigrationTest, AutoscalerGrowsBackUnderLoad) {
  ClusterHarness h(MobileOptions(3, 1, /*migration_slots=*/32));
  MigrationCoordinator coordinator(h.cluster, h.net);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  ClusterControlPlane::AutoscalerOptions aopts;
  aopts.period = sim::Millis(1);
  aopts.high_utilization = 0.05;
  aopts.low_utilization = 0.02;
  aopts.hot_stripes = 6;
  ClusterControlPlane& cp = h.cluster.control_plane();
  cp.StartAutoscaler(coordinator, aopts);

  ASSERT_TRUE(h.RunUntilReady(
      [&] { return cp.active_shards() == 1 && !coordinator.busy(); },
      sim::Seconds(5)));

  client::LoadGenSpec spec;
  spec.read_fraction = 0.7;
  spec.queue_depth = 32;
  spec.stop_after_ops = 30000;
  client::LoadGenerator gen(h.sim, *session, spec);
  gen.Run(0, 0);
  ASSERT_TRUE(h.RunUntilReady([&] { return cp.active_shards() >= 2; },
                              sim::Seconds(10)))
      << "sustained load must grow the active set";
  EXPECT_GE(cp.autoscaler_stats().grow_events, 1);
  EXPECT_GE(cp.autoscaler_stats().shrink_events, 1);
  // Drain the workload (and any in-flight rebalance) before teardown.
  ASSERT_TRUE(h.RunUntilReady([&] { return gen.Done().Ready(); },
                              sim::Seconds(60)));
  cp.StopAutoscaler();
  ASSERT_TRUE(h.RunUntilReady([&] { return !coordinator.busy(); },
                              sim::Seconds(5)));
  EXPECT_EQ(gen.errors(), 0) << "scaling must be hitless for the workload";
}

}  // namespace
}  // namespace reflex
