// R-way shard replication: replica placement math, fan-out write /
// steered-read semantics, dirty-replica exclusion and failover, and
// the steering determinism goldens.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/shard_map.h"
#include "sim/fault.h"
#include "testing/cluster_harness.h"
#include "testing/histogram_assert.h"

namespace reflex {
namespace {

using cluster::ClusterClient;
using cluster::Placement;
using cluster::ReplicaTarget;
using cluster::ShardExtent;
using cluster::ShardMap;
using cluster::ShardMapOptions;
using cluster::SteeringPolicy;
using core::ReqStatus;
using core::SloSpec;
using core::TenantClass;
using testing::ClusterHarness;

ShardMap MakeMap(int num_shards, int replication, Placement placement,
                 uint64_t capacity = 4096) {
  ShardMapOptions options;
  options.placement = placement;
  options.stripe_sectors = 8;
  options.replication = replication;
  ShardMap map(options);
  for (int i = 0; i < num_shards; ++i) {
    map.AddShard(static_cast<uint32_t>(100 + i), capacity);
  }
  return map;
}

TEST(ReplicationTest, StripedReplicaLayoutIsDistinctAndCollisionFree) {
  const ShardMap map = MakeMap(3, 2, Placement::kStriped);
  EXPECT_EQ(map.replication(), 2);
  // Every shard donates half its stripes to replica slots.
  EXPECT_EQ(map.capacity_sectors(), 3u * (4096 / (8 * 2)) * 8);

  std::map<std::pair<int, uint64_t>, uint64_t> slot_owner;
  const uint64_t num_stripes = map.capacity_sectors() / 8;
  for (uint64_t s = 0; s < num_stripes; ++s) {
    const std::vector<ReplicaTarget> targets = map.ReplicasForStripe(s);
    ASSERT_EQ(targets.size(), 2u) << "stripe " << s;
    EXPECT_EQ(targets[0].shard_index, map.ShardIndexForStripe(s));
    EXPECT_EQ(targets[0].shard_index, static_cast<int>(s % 3));
    EXPECT_EQ(targets[1].shard_index, static_cast<int>((s + 1) % 3));
    for (const ReplicaTarget& t : targets) {
      const auto slot = std::make_pair(t.shard_index, t.shard_lba);
      EXPECT_TRUE(slot_owner.emplace(slot, s).second)
          << "stripe " << s << " collides with stripe " << slot_owner[slot]
          << " on shard " << t.shard_index << " lba " << t.shard_lba;
      EXPECT_LT(t.shard_lba + 8, 4096u + 1) << "slot beyond shard capacity";
    }
  }
}

TEST(ReplicationTest, HashedReplicaTargetsAreDistinctIdentityAddressed) {
  const ShardMap map = MakeMap(4, 3, Placement::kHashed);
  for (uint64_t s = 0; s < 64; ++s) {
    const std::vector<ReplicaTarget> targets = map.ReplicasForStripe(s);
    ASSERT_EQ(targets.size(), 3u);
    EXPECT_EQ(targets[0].shard_index, map.ShardIndexForStripe(s));
    for (size_t a = 0; a < targets.size(); ++a) {
      // Thin-provisioned identity addressing, like the primary.
      EXPECT_EQ(targets[a].shard_lba, s * 8);
      for (size_t b = a + 1; b < targets.size(); ++b) {
        EXPECT_NE(targets[a].shard_index, targets[b].shard_index);
      }
    }
  }
}

TEST(ReplicationTest, ReplicationOneIsIdenticalToUnreplicatedMap) {
  for (Placement p : {Placement::kStriped, Placement::kHashed}) {
    const ShardMap replicated = MakeMap(3, 1, p);
    const ShardMap plain = MakeMap(3, 1, p);
    EXPECT_EQ(replicated.capacity_sectors(), plain.capacity_sectors());
    for (uint64_t lba = 0; lba < 128; lba += 13) {
      const auto a = replicated.Split(lba, 24);
      const auto b = plain.Split(lba, 24);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].shard_index, b[i].shard_index);
        EXPECT_EQ(a[i].shard_lba, b[i].shard_lba);
        EXPECT_EQ(a[i].sectors, b[i].sectors);
        EXPECT_TRUE(a[i].replicas.empty());
      }
    }
  }
}

TEST(ReplicationTest, ReplicationIsClampedToShardCount) {
  const ShardMap map = MakeMap(2, 3, Placement::kStriped);
  EXPECT_EQ(map.replication(), 2);
  for (uint64_t s = 0; s < 16; ++s) {
    EXPECT_EQ(map.ReplicasForStripe(s).size(), 2u);
  }
}

TEST(ReplicationTest, ReplicatedWriteLandsOnEveryReplica) {
  ClusterHarness h(ClusterHarness::MakeOptions(2, 8, /*replication=*/2));
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  const uint32_t kSectors = 16;  // two stripes, both shards as primary
  std::vector<uint8_t> out(kSectors * core::kSectorBytes);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>((i * 17 + 3) & 0xff);
  }
  auto write = session->Write(0, kSectors, out.data());
  ASSERT_TRUE(h.Await(write));
  ASSERT_TRUE(write.Get().ok());

  // Read every placement of every extent directly: each replica must
  // hold a byte-exact copy of its extent.
  const auto extents = h.cluster.shard_map().Split(0, kSectors);
  for (const ShardExtent& e : extents) {
    ASSERT_EQ(e.replicas.size(), 1u);
    for (const ReplicaTarget& t : e.AllTargets()) {
      std::vector<uint8_t> in(
          static_cast<size_t>(e.sectors) * core::kSectorBytes, 0);
      auto read = session->shard_session(t.shard_index)
                      .Read(t.shard_lba, e.sectors, in.data());
      ASSERT_TRUE(h.Await(read));
      ASSERT_TRUE(read.Get().ok());
      EXPECT_EQ(std::memcmp(
                    in.data(),
                    out.data() + static_cast<size_t>(e.buffer_offset_sectors) *
                                     core::kSectorBytes,
                    in.size()),
                0)
          << "shard " << t.shard_index << " lba " << t.shard_lba;
    }
  }
}

// Steering determinism golden: with identical queue-depth estimates,
// the tie breaks by shard id -- a full scan of stripe 1's replica set
// {shard 1 (primary), shard 0} must serve from shard 0.
TEST(ReplicationTest, SteeringTieBreaksByShardId) {
  ClusterClient::Options copts;
  copts.steering = SteeringPolicy::kFullScan;
  ClusterHarness h(ClusterHarness::MakeOptions(2, 8, /*replication=*/2),
                   copts);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  auto read = session->Read(/*lba=*/8, /*sectors=*/4);
  ASSERT_TRUE(h.Await(read));
  ASSERT_TRUE(read.Get().ok());
  EXPECT_EQ(session->shard_reads_served(0), 1);
  EXPECT_EQ(session->shard_reads_served(1), 0);
  EXPECT_EQ(session->read_failovers(), 0);
}

// Satellite pin: per-shard latency attribution follows the shard that
// actually served the read. Stripe 1's primary (shard 1) is forced to
// fail, so the read fails over to the replica on shard 0 -- the
// sample must land in shard 0's histogram and shard 1's must stay
// empty.
TEST(ReplicationTest, HistogramAttributionFollowsServingShard) {
  ClusterHarness h(ClusterHarness::MakeOptions(2, 8, /*replication=*/2));
  sim::FaultPlan plan(h.sim, 11);
  h.cluster.server(1).SetFaultPlan(&plan);
  plan.ScheduleWindow(sim::FaultKind::kServerDeviceError, sim::Micros(1),
                      sim::Seconds(10));
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  auto read = session->Read(/*lba=*/8, /*sectors=*/4);
  ASSERT_TRUE(h.Await(read));
  ASSERT_TRUE(read.Get().ok()) << "the replica must serve the read";
  EXPECT_EQ(session->read_failovers(), 1);
  EXPECT_EQ(session->shard_reads_served(0), 1);
  EXPECT_EQ(session->shard_reads_served(1), 0);
  EXPECT_TRUE(testing::HasSamples(session->shard_latency(0)))
      << "the serving replica records the latency";
  EXPECT_FALSE(testing::HasSamples(session->shard_latency(1)))
      << "the failed primary must not be attributed the sample";
}

TEST(ReplicationTest, WriteSurvivorMarksDeadReplicaDirtyAndExcludesIt) {
  ClusterHarness h(ClusterHarness::MakeOptions(2, 8, /*replication=*/2));
  sim::FaultPlan plan(h.sim, 13);
  h.cluster.server(1).SetFaultPlan(&plan);
  plan.ScheduleWindow(sim::FaultKind::kServerDeviceError, sim::Micros(1),
                      sim::Seconds(10));
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  // Stripe 0: primary shard 0 (healthy), replica shard 1 (failing).
  std::vector<uint8_t> out(4 * core::kSectorBytes, 0xAB);
  auto write = session->Write(0, 4, out.data());
  ASSERT_TRUE(h.Await(write));
  EXPECT_TRUE(write.Get().ok())
      << "the write must commit on the surviving replica";
  EXPECT_TRUE(h.client.IsDirty(1));
  EXPECT_EQ(h.client.dirty_since_version(1), 1u);
  EXPECT_FALSE(h.client.IsDirty(0));

  // Reads steer away from the dirty replica, even for stripes whose
  // primary it is (stripe 1's primary is shard 1).
  auto read = session->Read(8, 4);
  ASSERT_TRUE(h.Await(read));
  ASSERT_TRUE(read.Get().ok());
  EXPECT_EQ(session->shard_reads_served(1), 0);
  EXPECT_EQ(session->read_failovers(), 0)
      << "a dirty replica is excluded upfront, not failed over from";

  h.client.ReinstateShard(1);
  EXPECT_FALSE(h.client.IsDirty(1));
}

TEST(ReplicationTest, AllReplicasDirtyFailsReadsClosed) {
  ClusterHarness h(ClusterHarness::MakeOptions(2, 8, /*replication=*/2));
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);
  h.client.MarkDirty(0, 1);
  h.client.MarkDirty(1, 1);

  auto read = session->Read(0, 4);
  ASSERT_TRUE(h.Await(read));
  EXPECT_FALSE(read.Get().ok());
  EXPECT_EQ(read.Get().status, ReqStatus::kDeviceError)
      << "no readable copy: the read must fail, never serve stale data";
}

// Writes keep flowing to a dirty replica (bounding its divergence), so
// after out-of-band reinstatement it serves current data.
TEST(ReplicationTest, DirtyReplicaStillReceivesWritesAndServesAfterReinstate) {
  ClusterHarness h(ClusterHarness::MakeOptions(2, 8, /*replication=*/2));
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  h.client.MarkDirty(1, 1);
  // Stripe 1: primary shard 1 (dirty), replica shard 0. Commits via
  // shard 0; shard 1 is written anyway.
  std::vector<uint8_t> out(4 * core::kSectorBytes);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>((i * 7 + 1) & 0xff);
  }
  auto write = session->Write(8, 4, out.data());
  ASSERT_TRUE(h.Await(write));
  ASSERT_TRUE(write.Get().ok());

  h.client.ReinstateShard(1);
  // Primary-only steering sends stripe 1's read to shard 1.
  std::vector<uint8_t> in(out.size(), 0);
  auto read = session->Read(8, 4, in.data());
  ASSERT_TRUE(h.Await(read));
  ASSERT_TRUE(read.Get().ok());
  EXPECT_EQ(session->shard_reads_served(1), 1);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), out.size()), 0)
      << "the reinstated replica must hold the write issued while dirty";
}

// Round-trips under every steering policy on a replicated cluster.
TEST(ReplicationTest, RoundTripsAreByteExactUnderEverySteeringPolicy) {
  for (SteeringPolicy policy :
       {SteeringPolicy::kPrimaryOnly, SteeringPolicy::kPowerOfTwo,
        SteeringPolicy::kFullScan}) {
    ClusterClient::Options copts;
    copts.steering = policy;
    ClusterHarness h(ClusterHarness::MakeOptions(3, 8, /*replication=*/3),
                     copts);
    auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
    ASSERT_NE(session, nullptr);

    std::vector<uint8_t> out(24 * core::kSectorBytes);
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<uint8_t>((i * 31 + 5) & 0xff);
    }
    auto write = session->Write(3, 24, out.data());
    ASSERT_TRUE(h.Await(write));
    ASSERT_TRUE(write.Get().ok());

    std::vector<uint8_t> in(out.size(), 0);
    auto read = session->Read(3, 24, in.data());
    ASSERT_TRUE(h.Await(read));
    ASSERT_TRUE(read.Get().ok());
    EXPECT_EQ(std::memcmp(in.data(), out.data(), out.size()), 0)
        << "policy " << cluster::SteeringPolicyName(policy);
  }
}

// Power-of-two steering consumes the session's named RNG stream --
// two identical runs must still be bit-identical.
TEST(ReplicationTest, ReplicatedRunsAreDeterministic) {
  auto run = [] {
    ClusterClient::Options copts;
    copts.steering = SteeringPolicy::kPowerOfTwo;
    ClusterHarness h(ClusterHarness::MakeOptions(3, 8, /*replication=*/3),
                     copts);
    auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
    std::vector<sim::TimeNs> completions;
    for (int i = 0; i < 16; ++i) {
      auto io = i % 2 == 0 ? session->Write(i * 5, 11)
                           : session->Read(i * 5, 11);
      EXPECT_TRUE(h.Await(io));
      completions.push_back(io.Get().complete_time);
    }
    return completions;
  };
  EXPECT_EQ(run(), run());
}

TEST(ReplicationTest, SteeringPolicyNamesRoundTrip) {
  for (SteeringPolicy policy :
       {SteeringPolicy::kPrimaryOnly, SteeringPolicy::kPowerOfTwo,
        SteeringPolicy::kFullScan}) {
    SteeringPolicy parsed = SteeringPolicy::kPrimaryOnly;
    ASSERT_TRUE(cluster::SteeringPolicyFromName(
        cluster::SteeringPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  SteeringPolicy out;
  EXPECT_FALSE(cluster::SteeringPolicyFromName("garbage", &out));
}

}  // namespace
}  // namespace reflex
