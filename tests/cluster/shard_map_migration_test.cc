// ShardMap live-migration property tests: plan / commit / abort never
// lose or double-map a sector -- under striped and rendezvous
// placement, replication factors 1..3, range handoffs, moves back
// home, and randomized plan/commit/abort churn.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "cluster/shard_map.h"

namespace reflex {
namespace {

using cluster::MigrationAssignment;
using cluster::Placement;
using cluster::ReplicaTarget;
using cluster::ShardExtent;
using cluster::ShardMap;
using cluster::ShardMapOptions;

constexpr uint32_t kStripeSectors = 8;

ShardMap MakeMap(int num_shards, int replication, Placement placement,
                 uint32_t migration_slots, uint64_t capacity = 4096) {
  ShardMapOptions options;
  options.placement = placement;
  options.stripe_sectors = kStripeSectors;
  options.replication = replication;
  options.migration_slots = migration_slots;
  ShardMap map(options);
  for (int i = 0; i < num_shards; ++i) {
    map.AddShard(static_cast<uint32_t>(100 + i), capacity);
  }
  return map;
}

uint32_t TotalFreeSlots(const ShardMap& map) {
  uint32_t total = 0;
  for (int i = 0; i < map.num_shards(); ++i) {
    total += map.FreeMigrationSlots(i);
  }
  return total;
}

/**
 * The "never lose, never double-map" invariant, checked after every
 * map mutation:
 *  - every stripe resolves to exactly R placements on R distinct
 *    shards, primary first, agreeing with ShardIndexForStripe;
 *  - no two placements anywhere in the volume share a (shard, lba)
 *    slot;
 *  - Split() routes each stripe to the same placements, and a
 *    full-volume Split covers every logical sector exactly once.
 */
void CheckMapIntegrity(const ShardMap& map) {
  const int r = map.replication();
  std::map<std::pair<int, uint64_t>, uint64_t> slot_owner;
  for (uint64_t s = 0; s < map.num_stripes(); ++s) {
    const std::vector<ReplicaTarget> targets = map.ReplicasForStripe(s);
    ASSERT_EQ(targets.size(), static_cast<size_t>(r)) << "stripe " << s;
    EXPECT_EQ(targets[0].shard_index, map.ShardIndexForStripe(s))
        << "stripe " << s;

    std::set<int> shards;
    for (const ReplicaTarget& t : targets) {
      EXPECT_TRUE(shards.insert(t.shard_index).second)
          << "stripe " << s << " co-locates two replicas on shard "
          << t.shard_index;
      const auto slot = std::make_pair(t.shard_index, t.shard_lba);
      const auto [it, inserted] = slot_owner.emplace(slot, s);
      EXPECT_TRUE(inserted)
          << "stripe " << s << " double-maps shard " << t.shard_index
          << " lba " << t.shard_lba << " (also owned by stripe "
          << it->second << ")";
    }

    const auto extents = map.Split(s * kStripeSectors, kStripeSectors);
    ASSERT_EQ(extents.size(), 1u) << "stripe " << s;
    EXPECT_EQ(extents[0].shard_index, targets[0].shard_index);
    EXPECT_EQ(extents[0].shard_lba, targets[0].shard_lba);
    EXPECT_EQ(extents[0].sectors, kStripeSectors);
    ASSERT_EQ(extents[0].replicas.size(), static_cast<size_t>(r - 1));
    for (int k = 1; k < r; ++k) {
      EXPECT_EQ(extents[0].replicas[k - 1].shard_index,
                targets[k].shard_index);
      EXPECT_EQ(extents[0].replicas[k - 1].shard_lba, targets[k].shard_lba);
    }
  }

  uint64_t covered = 0;
  for (const ShardExtent& e :
       map.Split(0, static_cast<uint32_t>(map.capacity_sectors()))) {
    covered += e.sectors;
  }
  EXPECT_EQ(covered, map.capacity_sectors()) << "full-volume split gap";
}

TEST(ShardMapMigrationTest, RangeHandoffNeverLosesOrDoubleMapsASector) {
  for (Placement placement : {Placement::kStriped, Placement::kHashed}) {
    for (int r = 1; r <= 3; ++r) {
      SCOPED_TRACE(testing::Message()
                   << "placement=" << static_cast<int>(placement)
                   << " replication=" << r);
      ShardMap map = MakeMap(4, r, placement, /*migration_slots=*/8);
      const uint64_t capacity = map.capacity_sectors();
      const uint32_t free0 = TotalFreeSlots(map);

      // Evacuate stripes [0, 16)'s placements from shard 0 to shard 1.
      // Moves that would co-locate two replicas of a stripe are
      // skipped by planning, so the plan covers what CAN move safely.
      std::vector<MigrationAssignment> plan =
          map.PlanRangeMigration(0, 1, 0, 16);
      ASSERT_FALSE(plan.empty());
      // Planning reserves slots but changes no routing.
      EXPECT_EQ(map.epoch(), 0u);
      EXPECT_EQ(map.num_overrides(), 0u);
      CheckMapIntegrity(map);

      map.CommitMigration(plan);
      EXPECT_EQ(map.epoch(), 1u);
      EXPECT_EQ(map.num_overrides(), plan.size());
      EXPECT_EQ(map.capacity_sectors(), capacity)
          << "a migration must never change the logical volume";
      EXPECT_EQ(TotalFreeSlots(map) + map.num_overrides(), free0)
          << "every committed override holds exactly one landing slot";
      for (const MigrationAssignment& a : plan) {
        const auto targets = map.ReplicasForStripe(a.stripe);
        EXPECT_NE(targets[static_cast<size_t>(a.ordinal)].shard_index, 0)
            << "stripe " << a.stripe << " ordinal " << a.ordinal
            << " still on the evacuated shard";
      }
      CheckMapIntegrity(map);

      // Move every relocated placement back home: overrides clear and
      // every landing slot frees.
      std::vector<ShardMap::StripeMove> home;
      for (const MigrationAssignment& a : plan) {
        home.push_back(
            ShardMap::StripeMove{a.stripe, a.ordinal, a.from.shard_index});
      }
      std::vector<MigrationAssignment> back = map.PlanStripeMoves(home);
      ASSERT_EQ(back.size(), plan.size());
      map.CommitMigration(back);
      EXPECT_EQ(map.epoch(), 2u);
      EXPECT_EQ(map.num_overrides(), 0u);
      EXPECT_EQ(TotalFreeSlots(map), free0);
      CheckMapIntegrity(map);
    }
  }
}

TEST(ShardMapMigrationTest, AbortReleasesSlotsAndChangesNothing) {
  for (Placement placement : {Placement::kStriped, Placement::kHashed}) {
    SCOPED_TRACE(testing::Message()
                 << "placement=" << static_cast<int>(placement));
    ShardMap map = MakeMap(4, 2, placement, /*migration_slots=*/8);
    const uint32_t free0 = TotalFreeSlots(map);

    std::vector<MigrationAssignment> plan =
        map.PlanRangeMigration(0, 2, 0, 16);
    ASSERT_FALSE(plan.empty());
    EXPECT_LT(TotalFreeSlots(map), free0) << "planning reserves slots";

    map.AbortMigration(plan);
    EXPECT_EQ(map.epoch(), 0u);
    EXPECT_EQ(map.num_overrides(), 0u);
    EXPECT_EQ(TotalFreeSlots(map), free0);
    CheckMapIntegrity(map);
  }
}

TEST(ShardMapMigrationTest, CommitBumpsTheEpochExactlyOncePerBatch) {
  ShardMap map = MakeMap(4, 1, Placement::kStriped, /*migration_slots=*/8);
  std::vector<MigrationAssignment> plan = map.PlanRangeMigration(0, 1, 0, 8);
  ASSERT_GT(plan.size(), 1u) << "a multi-assignment batch";
  map.CommitMigration(plan);
  EXPECT_EQ(map.epoch(), 1u)
      << "one batch, one epoch bump, however many stripes moved";
}

TEST(ShardMapMigrationTest, ZeroSlotsReproducesTheImmobileMapAndPlansNothing) {
  for (Placement placement : {Placement::kStriped, Placement::kHashed}) {
    ShardMap mobile = MakeMap(3, 2, placement, /*migration_slots=*/0);
    ShardMap plain = MakeMap(3, 2, placement, /*migration_slots=*/0);
    EXPECT_EQ(mobile.capacity_sectors(), plain.capacity_sectors());
    EXPECT_EQ(TotalFreeSlots(mobile), 0u);
    // No landing space: every move is skipped and the plan is empty.
    EXPECT_TRUE(mobile.PlanRangeMigration(0, 1, 0, 4).empty());
    EXPECT_EQ(mobile.epoch(), 0u);
    CheckMapIntegrity(mobile);
  }
}

// Randomized churn: a seeded stream of stripe-move batches, each
// randomly committed or aborted, must preserve map integrity and slot
// accounting at every step -- across placements and R in {1,2,3}.
TEST(ShardMapMigrationTest, RandomizedMoveChurnKeepsIntegrity) {
  for (Placement placement : {Placement::kStriped, Placement::kHashed}) {
    for (int r = 1; r <= 3; ++r) {
      SCOPED_TRACE(testing::Message()
                   << "placement=" << static_cast<int>(placement)
                   << " replication=" << r);
      ShardMap map = MakeMap(4, r, placement, /*migration_slots=*/6);
      const uint32_t free0 = TotalFreeSlots(map);
      std::mt19937_64 rng(0xD15C0 + static_cast<uint64_t>(r) * 31 +
                          static_cast<uint64_t>(placement));
      uint64_t expected_epoch = 0;

      for (int step = 0; step < 40; ++step) {
        std::vector<ShardMap::StripeMove> moves;
        const int batch = 1 + static_cast<int>(rng() % 4);
        for (int m = 0; m < batch; ++m) {
          moves.push_back(ShardMap::StripeMove{
              rng() % map.num_stripes(), static_cast<int>(rng() % r),
              static_cast<int>(rng() % 4)});
        }
        std::vector<MigrationAssignment> plan = map.PlanStripeMoves(moves);
        if (rng() % 2 == 0) {
          if (!plan.empty()) ++expected_epoch;
          map.CommitMigration(plan);
        } else {
          map.AbortMigration(plan);
        }
        ASSERT_EQ(map.epoch(), expected_epoch) << "step " << step;
        ASSERT_EQ(TotalFreeSlots(map) + map.num_overrides(), free0)
            << "step " << step << ": slot leak or double-free";
        CheckMapIntegrity(map);
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

}  // namespace
}  // namespace reflex
