#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/cluster_control_plane.h"
#include "cluster/flash_cluster.h"
#include "sim/fault.h"
#include "testing/cluster_harness.h"
#include "testing/histogram_assert.h"

namespace reflex {
namespace {

using cluster::ClusterControlPlane;
using cluster::ClusterTenant;
using core::ReqStatus;
using core::SloSpec;
using core::TenantClass;
using sim::Micros;
using sim::Millis;
using testing::ClusterHarness;
using testing::LcSlo;

TEST(ClusterTest, CrossShardWriteReadRoundTripIsByteExact) {
  ClusterHarness h(/*num_shards=*/2, /*stripe_sectors=*/8);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  // 24 sectors starting mid-stripe: spans four stripes, alternating
  // between the two shards, with partial head and tail extents.
  const uint32_t kSectors = 24;
  const uint64_t kLba = 4;
  std::vector<uint8_t> out(kSectors * core::kSectorBytes);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>((i * 131 + 7) & 0xff);
  }

  auto write = session->Write(kLba, kSectors, out.data());
  ASSERT_TRUE(h.Await(write));
  ASSERT_TRUE(write.Get().ok());

  std::vector<uint8_t> in(out.size(), 0);
  auto read = session->Read(kLba, kSectors, in.data());
  ASSERT_TRUE(h.Await(read));
  ASSERT_TRUE(read.Get().ok());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), out.size()), 0)
      << "scatter-gather reassembly must be byte-exact";

  // The I/O crossed stripe boundaries, so it was split; both shards
  // saw extents and recorded latencies.
  EXPECT_EQ(session->requests_issued(), 2);
  EXPECT_EQ(session->requests_split(), 2);
  EXPECT_TRUE(testing::HasSamples(session->shard_latency(0)));
  EXPECT_TRUE(testing::HasSamples(session->shard_latency(1)));
}

TEST(ClusterTest, UnalignedOffsetsRoundTripAcrossManyShapes) {
  ClusterHarness h(/*num_shards=*/3, /*stripe_sectors=*/8);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  struct Shape {
    uint64_t lba;
    uint32_t sectors;
  };
  // One-stripe, exact-boundary, head/tail-partial and >2-shard spans.
  const Shape shapes[] = {{0, 8},  {8, 8},   {3, 2},  {6, 4},
                          {5, 19}, {16, 24}, {1, 47}, {70, 9}};
  uint8_t salt = 1;
  for (const Shape& s : shapes) {
    std::vector<uint8_t> out(s.sectors * core::kSectorBytes);
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<uint8_t>((i + salt) * 37 & 0xff);
    }
    auto write = session->Write(s.lba, s.sectors, out.data());
    ASSERT_TRUE(h.Await(write));
    ASSERT_TRUE(write.Get().ok());

    std::vector<uint8_t> in(out.size(), 0);
    auto read = session->Read(s.lba, s.sectors, in.data());
    ASSERT_TRUE(h.Await(read));
    ASSERT_TRUE(read.Get().ok());
    ASSERT_EQ(std::memcmp(in.data(), out.data(), out.size()), 0)
        << "lba=" << s.lba << " sectors=" << s.sectors;
    ++salt;
  }
}

TEST(ClusterTest, ShardShareSplitsIopsWithCeiling) {
  SloSpec slo = LcSlo(100001, 0.8, Millis(1));
  SloSpec share = ClusterControlPlane::ShardShare(slo, 4);
  EXPECT_EQ(share.iops, 25001u);  // ceil(100001 / 4)
  EXPECT_DOUBLE_EQ(share.read_fraction, 0.8);
  EXPECT_EQ(share.latency, Millis(1));
}

TEST(ClusterTest, AdmissionIsAllOrNothingWithRollback) {
  ClusterHarness h(/*num_shards=*/2);
  ClusterControlPlane& cp = h.cluster.control_plane();

  // Pre-load shard 1 only, so a cluster-wide registration passes shard
  // 0 and then fails on shard 1 -- exercising the rollback path.
  core::Tenant* preload =
      h.cluster.server(1).RegisterTenant(LcSlo(200000),
                                         TenantClass::kLatencyCritical);
  ASSERT_NE(preload, nullptr);

  // 600K cluster IOPS -> 300K per shard: fits shard 0 (~423K token/s
  // cap at 500us), exceeds shard 1 (300K + 200K preloaded).
  cluster::AdmitResult result;
  ClusterTenant rejected =
      cp.RegisterTenant(LcSlo(600000), TenantClass::kLatencyCritical,
                        &result);
  EXPECT_FALSE(rejected.valid());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.kind, cluster::AdmitResult::Kind::kRejectedCapacity)
      << "a token-math refusal is a capacity rejection";
  EXPECT_EQ(result.shard, 1) << "the refusing shard must be identified";
  EXPECT_EQ(result.status, ReqStatus::kOutOfResources);
  EXPECT_EQ(cp.tenants_rejected(), 1);

  // Remove the preload; the same registration must now succeed on both
  // shards -- which it can only do if the rejection left no partial
  // reservation behind on shard 0.
  ASSERT_TRUE(h.cluster.server(1).UnregisterTenant(preload->handle()));
  ClusterTenant admitted =
      cp.RegisterTenant(LcSlo(600000), TenantClass::kLatencyCritical,
                        &result);
  ASSERT_TRUE(admitted.valid());
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.status, ReqStatus::kOk);
  EXPECT_EQ(cp.tenants_admitted(), 1);
  EXPECT_EQ(static_cast<int>(admitted.handles.size()),
            h.cluster.num_shards());
  EXPECT_TRUE(cp.UnregisterTenant(admitted));
}

TEST(ClusterTest, OwningSessionUnregistersOnDestruction) {
  ClusterHarness h(/*num_shards=*/2);
  // Fills most of each shard's 500us cap; two such tenants never
  // coexist, so re-opening only works if destruction unregistered.
  const SloSpec big = LcSlo(600000);
  for (int round = 0; round < 2; ++round) {
    auto session =
        h.client.OpenSession(big, TenantClass::kLatencyCritical);
    ASSERT_NE(session, nullptr) << "round " << round;
  }
  EXPECT_EQ(h.cluster.control_plane().tenants_admitted(), 2);
}

TEST(ClusterTest, MetricsRollupSumsShardGauges) {
  ClusterHarness h(/*num_shards=*/2, /*stripe_sectors=*/8);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  for (int i = 0; i < 8; ++i) {
    auto io = session->Read(i * 6, 12);  // always crosses a boundary
    ASSERT_TRUE(h.Await(io));
    ASSERT_TRUE(io.Get().ok());
  }

  obs::MetricsRegistry& m = h.cluster.control_plane().SnapshotMetrics();
  const double total = m.GetGauge("cluster_requests_rx")->value();
  const double shard0 =
      m.GetGauge("shard_requests_rx", obs::Label("shard", int64_t{0}))
          ->value();
  const double shard1 =
      m.GetGauge("shard_requests_rx", obs::Label("shard", int64_t{1}))
          ->value();
  EXPECT_GT(shard0, 0.0);
  EXPECT_GT(shard1, 0.0);
  EXPECT_DOUBLE_EQ(total, shard0 + shard1);
  EXPECT_DOUBLE_EQ(m.GetGauge("cluster_shards")->value(), 2.0);
  EXPECT_GT(m.GetGauge("cluster_device_reads")->value(), 0.0);
}

// Regression: UnregisterTenant used to erase the tenant from
// active_tenants_ even when a shard refused the per-shard unregister,
// leaving the registry claiming "gone" while the shard still held the
// registration -- exactly the divergence the simtest registration
// probe enumerates active_tenants() to catch.
TEST(ClusterTest, UnregisterKeepsRegistryWhenShardRefuses) {
  ClusterHarness h(/*num_shards=*/2);
  ClusterControlPlane& cp = h.cluster.control_plane();
  ClusterTenant tenant =
      cp.RegisterTenant(LcSlo(100000), TenantClass::kLatencyCritical);
  ASSERT_TRUE(tenant.valid());
  ASSERT_EQ(cp.active_tenants().size(), 1u);

  // Unregister shard 1's handle behind the control plane's back: the
  // cluster-wide unregister below will succeed on shard 0 but shard 1
  // refuses (already inactive).
  ASSERT_TRUE(h.cluster.server(1).UnregisterTenant(tenant.handles[1]));

  EXPECT_FALSE(cp.UnregisterTenant(tenant))
      << "a refused shard must surface as failure";
  ASSERT_EQ(cp.active_tenants().size(), 1u)
      << "a partially-unregistered tenant must stay in the registry";
  EXPECT_EQ(cp.active_tenants()[0].handles, tenant.handles);
}

// Pins FanOut's partial-failure semantics: a multi-extent I/O reports
// the failing extent's status, and per-shard latency histograms record
// *successful* extents only -- a failed extent's duration measures the
// failure path, not shard service latency (regression: it used to be
// recorded, skewing the failing shard's tail).
TEST(ClusterTest, FanOutPartialFailureKeepsStatusAndSkipsLatency) {
  ClusterHarness h(/*num_shards=*/2, /*stripe_sectors=*/8);
  sim::FaultPlan plan(h.sim, 7);
  h.cluster.server(1).SetFaultPlan(&plan);
  plan.ScheduleWindow(sim::FaultKind::kServerDeviceError, sim::Micros(1),
                      sim::Seconds(10));
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  // 12 sectors from LBA 4: extents on shard 0 (stripe 0) and shard 1
  // (stripe 1); shard 1 is forced to reply kDeviceError.
  auto io = session->Read(4, 12);
  ASSERT_TRUE(h.Await(io));
  EXPECT_FALSE(io.Get().ok());
  EXPECT_EQ(io.Get().status, ReqStatus::kDeviceError)
      << "the failing extent's status must surface";
  EXPECT_TRUE(testing::HasSamples(session->shard_latency(0)))
      << "the successful extent records shard service latency";
  EXPECT_FALSE(testing::HasSamples(session->shard_latency(1)))
      << "a failed extent must not pollute the shard latency histogram";
}

TEST(ClusterTest, ClusterRunsAreDeterministic) {
  auto run = [] {
    ClusterHarness h(/*num_shards=*/2, /*stripe_sectors=*/8);
    auto session =
        h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
    std::vector<sim::TimeNs> completions;
    for (int i = 0; i < 16; ++i) {
      auto io = i % 2 == 0 ? session->Write(i * 5, 11)
                           : session->Read(i * 5, 11);
      EXPECT_TRUE(h.Await(io));
      completions.push_back(io.Get().complete_time);
    }
    return completions;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace reflex
