// ClusterSession racing a map flip: a request routed by a stale map
// copy bounces with kWrongShard, refreshes, and reissues -- bounded,
// deterministic, and with per-shard latency attributed to the shard
// that actually served the request.

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "cluster/cluster_client.h"
#include "cluster/migration.h"
#include "core/reflex_server.h"
#include "testing/cluster_harness.h"
#include "testing/histogram_assert.h"

namespace reflex {
namespace {

using cluster::FlashClusterOptions;
using cluster::MigrationCoordinator;
using core::SloSpec;
using core::TenantClass;
using testing::ClusterHarness;

constexpr uint32_t kStripeSectors = 8;

FlashClusterOptions MobileOptions() {
  FlashClusterOptions options =
      ClusterHarness::MakeOptions(2, kStripeSectors);
  options.shard_map.migration_slots = 8;
  return options;
}

std::vector<uint8_t> Pattern(size_t bytes, uint8_t salt) {
  std::vector<uint8_t> out(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<uint8_t>((i * 61 + salt) & 0xff);
  }
  return out;
}

template <typename T>
bool Await(ClusterHarness& h, const sim::Future<T>& f) {
  return h.RunUntilReady([&f] { return f.Ready(); });
}

/** Commits a stripe-0 migration (shard 0 -> 1) behind the client's
 * back: the client's local map copy is now one epoch stale. */
void FlipStripeZero(ClusterHarness& h, MigrationCoordinator& coordinator) {
  auto done = coordinator.MigrateRange(0, 1, 0, 1);
  ASSERT_TRUE(Await(h, done));
  ASSERT_TRUE(done.Get());
  ASSERT_LT(h.client.local_map().epoch(), h.cluster.shard_map().epoch())
      << "the client must still hold the pre-cutover map";
}

TEST(WrongShardRetryTest, StaleMapReadRefreshesRetriesOnceAndSucceeds) {
  ClusterHarness h(MobileOptions());
  MigrationCoordinator coordinator(h.cluster, h.net);
  auto writer = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(writer, nullptr);

  const auto data = Pattern(kStripeSectors * core::kSectorBytes, 5);
  auto write = writer->Write(0, kStripeSectors,
                             const_cast<uint8_t*>(data.data()));
  ASSERT_TRUE(Await(h, write) && write.Get().ok());
  FlipStripeZero(h, coordinator);

  // A fresh session, still routed by the stale map: its read bounces
  // off the moved range, refreshes, and lands on the new owner.
  auto probe = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(probe, nullptr);
  std::vector<uint8_t> in(data.size(), 0);
  auto read = probe->Read(0, kStripeSectors, in.data());
  ASSERT_TRUE(Await(h, read));
  ASSERT_TRUE(read.Get().ok());
  EXPECT_EQ(std::memcmp(in.data(), data.data(), in.size()), 0);
  EXPECT_EQ(probe->wrong_shard_retries(), 1)
      << "one refresh must suffice after a committed cutover";
  EXPECT_EQ(h.client.local_map().epoch(), h.cluster.shard_map().epoch())
      << "the bounce must have refreshed the client's map";

  // Attribution follows the serving shard: the migrated-to shard 1
  // records the sample, the stale primary records nothing.
  EXPECT_EQ(probe->shard_reads_served(1), 1);
  EXPECT_EQ(probe->shard_reads_served(0), 0);
  EXPECT_TRUE(testing::HasSamples(probe->shard_latency(1)));
  EXPECT_FALSE(testing::HasSamples(probe->shard_latency(0)));
}

TEST(WrongShardRetryTest, StaleMapWriteRetriesAndLandsOnTheNewOwner) {
  ClusterHarness h(MobileOptions());
  MigrationCoordinator coordinator(h.cluster, h.net);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);
  FlipStripeZero(h, coordinator);

  const auto data = Pattern(kStripeSectors * core::kSectorBytes, 9);
  auto write = session->Write(0, kStripeSectors,
                              const_cast<uint8_t*>(data.data()));
  ASSERT_TRUE(Await(h, write));
  ASSERT_TRUE(write.Get().ok());
  EXPECT_EQ(session->wrong_shard_retries(), 1);

  std::vector<uint8_t> in(data.size(), 0);
  auto read = session->Read(0, kStripeSectors, in.data());
  ASSERT_TRUE(Await(h, read) && read.Get().ok());
  EXPECT_EQ(std::memcmp(in.data(), data.data(), in.size()), 0);
}

// A range that bounces forever (a gate demanding an epoch the master
// map never reaches) must exhaust the bounded budget and fail closed
// -- never spin.
TEST(WrongShardRetryTest, RetryBudgetIsBoundedAndFailsClosed) {
  ClusterHarness h(MobileOptions());
  const int gate_id = h.cluster.server(0).AddRangeGate(0, kStripeSectors);
  core::RangeGate* gate = h.cluster.server(0).FindRangeGate(gate_id);
  ASSERT_NE(gate, nullptr);
  gate->state = core::RangeGateState::kMoved;
  gate->min_epoch = ~uint64_t{0} - 1;  // no client epoch ever passes

  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);
  auto read = session->Read(0, kStripeSectors);
  ASSERT_TRUE(Await(h, read));
  EXPECT_FALSE(read.Get().ok());
  EXPECT_EQ(read.Get().status, core::ReqStatus::kWrongShard)
      << "the terminal bounce surfaces instead of spinning";
  EXPECT_EQ(session->wrong_shard_retries(), 6)
      << "exactly kMaxWrongShardRetries refresh-and-reissue rounds";
}

// The retry path consumes no hidden nondeterminism: two identical
// stale-map runs complete at the same simulated time with the same
// retry count.
TEST(WrongShardRetryTest, WrongShardRetriesAreDeterministic) {
  auto run = [] {
    ClusterHarness h(MobileOptions());
    MigrationCoordinator coordinator(h.cluster, h.net);
    auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
    EXPECT_NE(session, nullptr);
    const auto data = Pattern(kStripeSectors * core::kSectorBytes, 13);
    auto write = session->Write(0, kStripeSectors,
                                const_cast<uint8_t*>(data.data()));
    EXPECT_TRUE(Await(h, write) && write.Get().ok());
    auto done = coordinator.MigrateRange(0, 1, 0, 1);
    EXPECT_TRUE(Await(h, done) && done.Get());

    auto read = session->Read(0, kStripeSectors);
    EXPECT_TRUE(Await(h, read) && read.Get().ok());
    return std::make_pair(read.Get().complete_time,
                          session->wrong_shard_retries());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace reflex
