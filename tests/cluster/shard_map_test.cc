#include "cluster/shard_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/random.h"

namespace reflex {
namespace {

using cluster::Placement;
using cluster::ShardExtent;
using cluster::ShardMap;
using cluster::ShardMapOptions;

ShardMap MakeMap(int num_shards, Placement placement,
                 uint32_t stripe_sectors = 8,
                 uint64_t capacity_sectors = 1 << 20) {
  ShardMapOptions options;
  options.placement = placement;
  options.stripe_sectors = stripe_sectors;
  ShardMap map(options);
  for (int i = 0; i < num_shards; ++i) {
    map.AddShard(static_cast<uint32_t>(i), capacity_sectors);
  }
  return map;
}

TEST(ShardMapTest, StripedRoutingIsRoundRobinWithDenseShardLbas) {
  ShardMap map = MakeMap(4, Placement::kStriped, /*stripe_sectors=*/8);
  // Stripe s lives on shard s % 4 at dense shard LBA (s / 4) * 8.
  for (uint64_t stripe = 0; stripe < 64; ++stripe) {
    EXPECT_EQ(map.ShardIndexForStripe(stripe),
              static_cast<int>(stripe % 4));
    auto extents = map.Split(stripe * 8, 8);
    ASSERT_EQ(extents.size(), 1u);
    EXPECT_EQ(extents[0].shard_index, static_cast<int>(stripe % 4));
    EXPECT_EQ(extents[0].shard_lba, (stripe / 4) * 8);
    EXPECT_EQ(extents[0].sectors, 8u);
    EXPECT_EQ(extents[0].buffer_offset_sectors, 0u);
  }
}

TEST(ShardMapTest, BoundaryCrossingIoSplitsWithExactBufferOffsets) {
  ShardMap map = MakeMap(4, Placement::kStriped, /*stripe_sectors=*/8);
  // [4, 20): tail of stripe 0 (shard 0), all of stripe 1 (shard 1),
  // head of stripe 2 (shard 2).
  auto extents = map.Split(4, 16);
  ASSERT_EQ(extents.size(), 3u);

  EXPECT_EQ(extents[0].shard_index, 0);
  EXPECT_EQ(extents[0].shard_lba, 4u);
  EXPECT_EQ(extents[0].sectors, 4u);
  EXPECT_EQ(extents[0].buffer_offset_sectors, 0u);

  EXPECT_EQ(extents[1].shard_index, 1);
  EXPECT_EQ(extents[1].shard_lba, 0u);
  EXPECT_EQ(extents[1].sectors, 8u);
  EXPECT_EQ(extents[1].buffer_offset_sectors, 4u);

  EXPECT_EQ(extents[2].shard_index, 2);
  EXPECT_EQ(extents[2].shard_lba, 0u);
  EXPECT_EQ(extents[2].sectors, 4u);
  EXPECT_EQ(extents[2].buffer_offset_sectors, 12u);
}

TEST(ShardMapTest, SingleShardMergesEverythingIntoOneExtent) {
  ShardMap map = MakeMap(1, Placement::kStriped, /*stripe_sectors=*/8);
  // Every stripe lands on shard 0 contiguously, so the per-stripe runs
  // merge back into a single extent.
  auto extents = map.Split(3, 1000);
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].shard_lba, 3u);
  EXPECT_EQ(extents[0].sectors, 1000u);
}

TEST(ShardMapTest, CapacityFollowsPlacement) {
  // Striped: 4 shards x 100 whole stripes of 8 sectors each; the
  // 7-sector remainder of each shard is unusable.
  ShardMap striped = MakeMap(4, Placement::kStriped, 8, 807);
  EXPECT_EQ(striped.capacity_sectors(), 4u * 100u * 8u);
  // Hashed: identity addressing, so the volume is one shard's worth.
  ShardMap hashed = MakeMap(4, Placement::kHashed, 8, 807);
  EXPECT_EQ(hashed.capacity_sectors(), 100u * 8u);
}

TEST(ShardMapTest, RoutingStableUnderShardAddOrder) {
  for (Placement placement : {Placement::kStriped, Placement::kHashed}) {
    ShardMapOptions options;
    options.placement = placement;
    options.stripe_sectors = 8;
    ShardMap forward(options);
    ShardMap shuffled(options);
    for (uint32_t id : {0u, 1u, 2u, 3u, 4u}) forward.AddShard(id, 1 << 20);
    for (uint32_t id : {3u, 0u, 4u, 2u, 1u}) shuffled.AddShard(id, 1 << 20);

    sim::Rng rng(7, "add_order");
    for (int trial = 0; trial < 500; ++trial) {
      const uint64_t lba = static_cast<uint64_t>(rng.NextBounded(100000));
      const uint32_t sectors =
          static_cast<uint32_t>(rng.NextInRange(1, 200));
      const auto a = forward.Split(lba, sectors);
      const auto b = shuffled.Split(lba, sectors);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].shard_id, b[i].shard_id);
        EXPECT_EQ(a[i].shard_lba, b[i].shard_lba);
        EXPECT_EQ(a[i].sectors, b[i].sectors);
        EXPECT_EQ(a[i].buffer_offset_sectors, b[i].buffer_offset_sectors);
      }
    }
  }
}

TEST(ShardMapTest, HashedPlacementSpreadsStripesRoughlyEvenly) {
  ShardMap map = MakeMap(4, Placement::kHashed);
  std::map<int, int> counts;
  const int kStripes = 4096;
  for (uint64_t s = 0; s < kStripes; ++s) {
    counts[map.ShardIndexForStripe(s)]++;
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [shard, count] : counts) {
    // Expected 25%; a rendezvous hash should not be off by 2x.
    EXPECT_GT(count, kStripes / 8) << "shard " << shard;
    EXPECT_LT(count, kStripes / 2) << "shard " << shard;
  }
}

TEST(ShardMapTest, HashedPlacementMovesFewStripesOnShardAdd) {
  ShardMapOptions options;
  options.placement = Placement::kHashed;
  ShardMap before(options);
  ShardMap after(options);
  for (uint32_t id = 0; id < 4; ++id) {
    before.AddShard(id, 1 << 20);
    after.AddShard(id, 1 << 20);
  }
  after.AddShard(4, 1 << 20);

  const int kStripes = 4096;
  int moved = 0;
  for (uint64_t s = 0; s < kStripes; ++s) {
    const uint32_t id_before = before.shard_id(before.ShardIndexForStripe(s));
    const uint32_t id_after = after.shard_id(after.ShardIndexForStripe(s));
    if (id_before != id_after) {
      ++moved;
      // Rendezvous only ever moves a stripe onto the new shard.
      EXPECT_EQ(id_after, 4u);
    }
  }
  // Ideal is 1/5 of stripes; allow generous slack but far below the
  // ~3/4 a mod-N remap would cause.
  EXPECT_GT(moved, kStripes / 10);
  EXPECT_LT(moved, kStripes * 2 / 5);
}

TEST(ShardMapTest, IoEndingExactlyOnLastSectorIsServed) {
  // 4 shards x (1<<20) sectors, stripe 8 => volume of 1<<22 sectors.
  ShardMap map = MakeMap(4, Placement::kStriped, /*stripe_sectors=*/8);
  const uint64_t capacity = map.capacity_sectors();
  ASSERT_EQ(capacity, uint64_t{1} << 22);

  // The final stripe, and the single last sector, route like any other.
  auto last_stripe = map.Split(capacity - 8, 8);
  ASSERT_EQ(last_stripe.size(), 1u);
  EXPECT_EQ(last_stripe[0].sectors, 8u);

  auto last_sector = map.Split(capacity - 1, 1);
  ASSERT_EQ(last_sector.size(), 1u);
  EXPECT_EQ(last_sector[0].sectors, 1u);
  EXPECT_EQ(last_sector[0].shard_index,
            map.ShardIndexForStripe(capacity / 8 - 1));

  // A request crossing a boundary but ending exactly at capacity.
  auto tail = map.Split(capacity - 12, 12);
  uint32_t total = 0;
  for (const ShardExtent& e : tail) total += e.sectors;
  EXPECT_EQ(total, 12u);
}

TEST(ShardMapTest, ZeroSectorRequestYieldsNoExtents) {
  for (Placement placement : {Placement::kStriped, Placement::kHashed}) {
    ShardMap map = MakeMap(4, placement, /*stripe_sectors=*/8);
    EXPECT_TRUE(map.Split(0, 0).empty());
    EXPECT_TRUE(map.Split(17, 0).empty());
    // Even at the very end of the volume: lba + 0 == capacity is not
    // out of range.
    EXPECT_TRUE(map.Split(map.capacity_sectors(), 0).empty());
  }
}

TEST(ShardMapTest, SingleRequestCanSpanEveryShard) {
  const int kShards = 4;
  ShardMap map = MakeMap(kShards, Placement::kStriped,
                         /*stripe_sectors=*/8);
  // [0, 32) covers stripes 0..3, one on each of the 4 shards.
  auto extents = map.Split(0, 32);
  ASSERT_EQ(extents.size(), 4u);
  std::vector<bool> seen(kShards, false);
  for (int i = 0; i < kShards; ++i) {
    EXPECT_EQ(extents[i].shard_index, i);
    EXPECT_EQ(extents[i].sectors, 8u);
    EXPECT_EQ(extents[i].buffer_offset_sectors,
              static_cast<uint32_t>(i) * 8u);
    seen[extents[i].shard_index] = true;
  }
  for (int i = 0; i < kShards; ++i) EXPECT_TRUE(seen[i]);
}

TEST(ShardMapTest, MergeNeverReordersExtents) {
  // Hashed placement can land consecutive stripes on one shard (which
  // merges) or ping-pong between shards; either way the extents must
  // stay in logical order with monotonically increasing buffer
  // offsets -- reassembly depends on it.
  sim::Rng rng(123, "merge_order");
  for (int shards : {1, 2, 5}) {
    ShardMap map = MakeMap(shards, Placement::kHashed,
                           /*stripe_sectors=*/4);
    for (int trial = 0; trial < 500; ++trial) {
      const uint64_t lba = rng.NextBounded(1 << 16);
      const uint32_t sectors =
          static_cast<uint32_t>(rng.NextInRange(1, 64));
      uint32_t next_offset = 0;
      for (const ShardExtent& e : map.Split(lba, sectors)) {
        ASSERT_EQ(e.buffer_offset_sectors, next_offset)
            << "extents out of order or overlapping";
        next_offset += e.sectors;
      }
      ASSERT_EQ(next_offset, sectors);
    }
  }
}

/**
 * Property: for random (lba, sectors), the extents exactly tile the
 * logical range -- in order, no gaps or overlaps -- and every sector's
 * shard/LBA agrees with independent per-sector routing math.
 */
TEST(ShardMapTest, PropertySplitTilesLogicalRangeExactly) {
  sim::Rng rng(99, "split_property");
  for (Placement placement : {Placement::kStriped, Placement::kHashed}) {
    ShardMap map = MakeMap(5, placement, /*stripe_sectors=*/16);
    for (int trial = 0; trial < 2000; ++trial) {
      const uint64_t lba = rng.NextBounded(1 << 18);
      const uint32_t sectors =
          static_cast<uint32_t>(rng.NextInRange(1, 300));
      const auto extents = map.Split(lba, sectors);

      uint64_t logical = lba;
      uint32_t buffer = 0;
      for (const ShardExtent& e : extents) {
        ASSERT_GT(e.sectors, 0u);
        ASSERT_EQ(e.buffer_offset_sectors, buffer);
        // Check each sector of the extent against per-stripe routing.
        for (uint32_t k = 0; k < e.sectors; ++k) {
          const uint64_t cur = logical + k;
          const uint64_t stripe = cur / 16;
          const uint32_t within = static_cast<uint32_t>(cur % 16);
          ASSERT_EQ(map.ShardIndexForStripe(stripe), e.shard_index);
          const uint64_t want_lba =
              placement == Placement::kStriped
                  ? (stripe / 5) * 16 + within
                  : cur;
          ASSERT_EQ(e.shard_lba + k, want_lba);
        }
        logical += e.sectors;
        buffer += e.sectors;
      }
      ASSERT_EQ(logical, lba + sectors);
      ASSERT_EQ(buffer, sectors);
    }
  }
}

// Pins capacity_sectors() (now an O(1) cached value recomputed by
// AddShard -- Split consults it per request on the cluster hot path):
// it must track the shard set exactly as the on-demand min-scan did,
// including uneven capacities and both placements.
TEST(ShardMapTest, CapacityTracksShardSetAcrossAdds) {
  ShardMapOptions striped;
  striped.placement = Placement::kStriped;
  striped.stripe_sectors = 8;
  ShardMap map(striped);
  EXPECT_EQ(map.capacity_sectors(), 0u) << "no shards, no capacity";

  // Uneven capacities: the smallest shard bounds the whole-stripe
  // count each shard contributes. 100 sectors -> 12 stripes of 8.
  map.AddShard(3, 100);
  EXPECT_EQ(map.capacity_sectors(), 12u * 8u);
  map.AddShard(1, 256);  // smaller id, larger capacity: still 12 stripes
  EXPECT_EQ(map.capacity_sectors(), 2u * 12u * 8u);
  map.AddShard(2, 64);  // new smallest: 8 stripes per shard
  EXPECT_EQ(map.capacity_sectors(), 3u * 8u * 8u);

  // Hashed placement: identity addressing means any shard must back
  // the whole volume, so the smallest shard alone bounds it.
  ShardMapOptions hashed;
  hashed.placement = Placement::kHashed;
  hashed.stripe_sectors = 8;
  ShardMap hmap(hashed);
  hmap.AddShard(0, 256);
  EXPECT_EQ(hmap.capacity_sectors(), 256u);
  hmap.AddShard(1, 100);
  EXPECT_EQ(hmap.capacity_sectors(), 12u * 8u);
  hmap.AddShard(2, 1 << 20);
  EXPECT_EQ(hmap.capacity_sectors(), 12u * 8u)
      << "a large shard cannot raise a min-bounded capacity";

  // Split still enforces the bound at the cached capacity's edge.
  EXPECT_FALSE(hmap.Split(88, 8).empty());
  EXPECT_TRUE(hmap.Split(90, 0).empty());
}

}  // namespace
}  // namespace reflex
