#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/stack_costs.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace reflex::net {
namespace {

using sim::Micros;
using sim::Simulator;
using sim::TimeNs;

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, Micros(1.0), Micros(0.3)) {
    a_ = net_.AddMachine("a");
    b_ = net_.AddMachine("b");
  }

  Simulator sim_;
  Network net_;
  Machine* a_;
  Machine* b_;
};

TEST_F(NetworkTest, SmallMessageLatencyBudget) {
  TcpConnection conn(net_, a_, b_);
  TimeNs arrival = -1;
  conn.SendToServer(64, [&] { arrival = sim_.Now(); });
  sim_.Run();
  // One frame: tx serialization (142B at 0.8ns/B ~ 114ns) + 2.5us NIC
  // + 0.3us prop + 1us switch + 0.3us prop + rx serialization + 2.5us
  // NIC ~= 6.8us.
  EXPECT_GT(arrival, Micros(6));
  EXPECT_LT(arrival, Micros(8));
}

TEST_F(NetworkTest, LargeMessageSerializationDominates) {
  TcpConnection conn(net_, a_, b_);
  TimeNs arrival = -1;
  // 1MB: ~118 frames, wire bytes ~1.06MB at 0.8ns/B ~ 850us one-way
  // on each of tx and rx links, but frames pipeline, so total is
  // roughly one link serialization plus per-frame latency.
  conn.SendToServer(1 << 20, [&] { arrival = sim_.Now(); });
  sim_.Run();
  EXPECT_GT(arrival, Micros(800));
  EXPECT_LT(arrival, Micros(1000));
}

TEST_F(NetworkTest, ThroughputCappedAtLineRate) {
  TcpConnection conn(net_, a_, b_);
  // Offer 2000 x 4KB messages at once; drain time is limited by the
  // 10Gb/s = 1.25GB/s link: 2000 * 4KB+overhead ~ 8.3MB ~ 6.6ms.
  int delivered = 0;
  TimeNs last = 0;
  for (int i = 0; i < 2000; ++i) {
    conn.SendToServer(4096, [&] {
      ++delivered;
      last = sim_.Now();
    });
  }
  sim_.Run();
  EXPECT_EQ(delivered, 2000);
  const double seconds = sim::ToSeconds(last);
  const double gbps = 2000 * 4096 * 8 / seconds / 1e9;
  EXPECT_GT(gbps, 8.5);
  EXPECT_LT(gbps, 10.0);
}

TEST_F(NetworkTest, InOrderDeliveryPerDirection) {
  TcpConnection conn(net_, a_, b_);
  std::vector<int> order;
  sim::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    conn.SendToServer(64 + rng.NextBounded(9000),
                      [&order, i] { order.push_back(i); });
  }
  sim_.Run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(NetworkTest, DirectionsAreIndependent) {
  TcpConnection conn(net_, a_, b_);
  // Saturate a->b; a b->a message must not queue behind it.
  for (int i = 0; i < 500; ++i) conn.SendToServer(8948, nullptr);
  TimeNs reverse_arrival = -1;
  conn.SendToClient(64, [&] { reverse_arrival = sim_.Now(); });
  sim_.Run();
  EXPECT_LT(reverse_arrival, Micros(10));
}

TEST_F(NetworkTest, TwoSendersShareReceiverLink) {
  Machine* c = net_.AddMachine("c");
  TcpConnection ab(net_, a_, b_);
  TcpConnection cb(net_, c, b_);
  int delivered = 0;
  TimeNs last = 0;
  for (int i = 0; i < 500; ++i) {
    ab.SendToServer(8948, [&] { ++delivered; last = sim_.Now(); });
    cb.SendToServer(8948, [&] { ++delivered; last = sim_.Now(); });
  }
  sim_.Run();
  EXPECT_EQ(delivered, 1000);
  // Total 1000 jumbo frames through b's single rx link at 10Gb/s.
  const double gbps = 1000.0 * (8948 + 78) * 8 / sim::ToSeconds(last) / 1e9;
  EXPECT_LT(gbps, 10.0);
  EXPECT_GT(gbps, 9.0);
}

TEST_F(NetworkTest, ByteCountersTrackWireBytes) {
  TcpConnection conn(net_, a_, b_);
  conn.SendToServer(100, nullptr);
  sim_.Run();
  EXPECT_EQ(a_->tx_bytes(), 100 + 78);
  EXPECT_EQ(b_->rx_bytes(), 100 + 78);
}

TEST_F(NetworkTest, UdpTransportHasSmallerOverheadAndState) {
  TcpConnection tcp(net_, a_, b_, Transport::kTcp);
  TcpConnection udp(net_, a_, b_, Transport::kUdp);
  EXPECT_GT(tcp.FrameOverhead(), udp.FrameOverhead());
  EXPECT_GT(tcp.StateBytes(), udp.StateBytes());
  int64_t before = b_->rx_bytes();
  udp.SendToServer(100, nullptr);
  sim_.Run();
  EXPECT_EQ(b_->rx_bytes() - before, 100 + 46);
}

TEST_F(NetworkTest, UdpDeliversInOrderToo) {
  TcpConnection udp(net_, a_, b_, Transport::kUdp);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    udp.SendToServer(64, [&order, i] { order.push_back(i); });
  }
  sim_.Run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(StackCostsTest, IxIsCheapAndPolled) {
  StackCosts ix = StackCosts::IxDataplane();
  EXPECT_EQ(ix.syscall, 0);
  EXPECT_EQ(ix.irq_coalesce_max, 0);
  EXPECT_DOUBLE_EQ(ix.copy_ns_per_byte, 0.0);
  sim::Rng rng(1);
  EXPECT_EQ(ix.SampleDeliveryDelay(rng), 0);
  EXPECT_LT(ix.TxCost(4096), StackCosts::LinuxEpoll().TxCost(4096));
}

TEST(StackCostsTest, LinuxDeliveryDelayBoundedByCoalescing) {
  StackCosts linux_stack = StackCosts::LinuxEpoll();
  sim::Rng rng(2);
  TimeNs max_seen = 0;
  for (int i = 0; i < 10000; ++i) {
    TimeNs d = linux_stack.SampleDeliveryDelay(rng);
    EXPECT_GE(d, 0);
    max_seen = std::max(max_seen, d);
  }
  // Coalescing contributes up to 20us; jitter adds a tail.
  EXPECT_GT(max_seen, Micros(15));
}

TEST(StackCostsTest, CopyCostScalesWithBytes) {
  StackCosts linux_stack = StackCosts::LinuxEpoll();
  EXPECT_GT(linux_stack.RxCost(65536), linux_stack.RxCost(4096));
  StackCosts null_stack = StackCosts::Null();
  EXPECT_EQ(null_stack.RxCost(65536), 0);
  EXPECT_EQ(null_stack.TxCost(65536), 0);
}

TEST(StackCostsTest, BlockingStackAddsWakeup) {
  EXPECT_GT(StackCosts::LinuxBlocking().blocking_wakeup, 0);
  EXPECT_EQ(StackCosts::LinuxEpoll().blocking_wakeup, 0);
}

}  // namespace
}  // namespace reflex::net
