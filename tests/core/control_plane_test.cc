#include <gtest/gtest.h>

#include "client/load_generator.h"
#include "client/reflex_client.h"
#include "testing/harness.h"

namespace reflex {
namespace {

using core::ReqStatus;
using core::SloSpec;
using core::TenantClass;
using sim::Micros;
using sim::Millis;
using testing::Harness;

TEST(ControlPlaneTest, StrictestSloSetsTokenRate) {
  Harness h;
  // No LC tenants: BE may use the full device capacity.
  h.BeTenant();
  EXPECT_NEAR(h.server.control_plane().scheduler_token_rate(), 547000.0,
              1000.0);
  // A 2ms LC tenant caps the rate at the 2ms point of the curve.
  h.LcTenant(20000, 0.9, Millis(2));
  const double rate_2ms = h.server.control_plane().scheduler_token_rate();
  EXPECT_LT(rate_2ms, 547000.0);
  EXPECT_GT(rate_2ms, 450000.0);
  // A stricter 500us tenant lowers it further.
  h.LcTenant(20000, 0.9, Micros(500));
  const double rate_500us =
      h.server.control_plane().scheduler_token_rate();
  EXPECT_LT(rate_500us, rate_2ms);
  EXPECT_NEAR(rate_500us, 423000.0, 25000.0);
  EXPECT_EQ(h.server.control_plane().strictest_slo(), Micros(500));
}

TEST(ControlPlaneTest, BeShareGrowsWhenLcLeaves) {
  Harness h;
  core::Tenant* be = h.BeTenant();
  core::Tenant* lc = h.LcTenant(100000, 0.8, Millis(2));
  const double be_share_with_lc = be->token_rate();
  ASSERT_TRUE(h.server.UnregisterTenant(lc->handle()));
  EXPECT_GT(be->token_rate(), be_share_with_lc);
  // Unregistering again is a no-op.
  EXPECT_FALSE(h.server.UnregisterTenant(lc->handle()));
}

TEST(ControlPlaneTest, BeShareIsFairAcrossBeTenants) {
  Harness h;
  core::Tenant* a = h.BeTenant();
  core::Tenant* b = h.BeTenant();
  core::Tenant* c = h.BeTenant();
  EXPECT_DOUBLE_EQ(a->token_rate(), b->token_rate());
  EXPECT_DOUBLE_EQ(b->token_rate(), c->token_rate());
  EXPECT_NEAR(a->token_rate() * 3,
              h.server.control_plane().scheduler_token_rate(), 1.0);
}

TEST(ControlPlaneTest, AdmissionBoundary) {
  Harness h;
  // Fill the 500us cap (~423K tokens/s) with LC reservations of
  // 100K tokens/s each (100K IOPS read-only).
  SloSpec slo;
  slo.iops = 100000;
  slo.read_fraction = 1.0;
  slo.latency = Micros(500);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(h.server.RegisterTenant(slo, TenantClass::kLatencyCritical),
              nullptr)
        << "tenant " << i << " fits under the cap";
  }
  ReqStatus status;
  EXPECT_EQ(h.server.RegisterTenant(slo, TenantClass::kLatencyCritical,
                                    &status),
            nullptr)
      << "the fifth 100K reservation exceeds ~423K tokens/s";
  EXPECT_EQ(status, ReqStatus::kOutOfResources);
  // A small tenant still fits in the remainder.
  slo.iops = 20000;
  EXPECT_NE(h.server.RegisterTenant(slo, TenantClass::kLatencyCritical),
            nullptr);
}

TEST(ControlPlaneTest, InvalidSloRejected) {
  Harness h;
  SloSpec bad;
  bad.iops = 0;  // meaningless reservation
  bad.latency = Micros(500);
  ReqStatus status;
  EXPECT_EQ(h.server.RegisterTenant(bad, TenantClass::kLatencyCritical,
                                    &status),
            nullptr);
  EXPECT_EQ(status, ReqStatus::kOutOfResources);
  bad.iops = 1000;
  bad.latency = 0;
  EXPECT_EQ(h.server.RegisterTenant(bad, TenantClass::kLatencyCritical,
                                    &status),
            nullptr);
  bad.latency = Micros(500);
  bad.read_fraction = 1.5;
  EXPECT_EQ(h.server.RegisterTenant(bad, TenantClass::kLatencyCritical,
                                    &status),
            nullptr);
}

TEST(ControlPlaneTest, TenantsSpreadAcrossThreads) {
  core::ServerOptions options;
  options.num_threads = 4;
  Harness h(options);
  for (int i = 0; i < 8; ++i) h.LcTenant(10000, 0.9, Millis(2));
  int counts[4] = {0, 0, 0, 0};
  for (core::Tenant* t : h.server.tenants()) {
    ASSERT_GE(t->thread_index(), 0);
    ASSERT_LT(t->thread_index(), 4);
    ++counts[t->thread_index()];
  }
  for (int c : counts) EXPECT_EQ(c, 2) << "balanced placement";
}

TEST(ControlPlaneTest, ScaleToAddsAndRemovesThreads) {
  core::ServerOptions options;
  options.num_threads = 1;
  options.max_threads = 6;
  Harness h(options);
  for (int i = 0; i < 6; ++i) h.BeTenant();
  EXPECT_EQ(h.server.num_active_threads(), 1);

  ASSERT_TRUE(h.server.control_plane().ScaleTo(4));
  EXPECT_EQ(h.server.num_active_threads(), 4);
  // Tenants were rebalanced across the 4 active threads.
  int max_thread = 0;
  for (core::Tenant* t : h.server.tenants()) {
    max_thread = std::max(max_thread, t->thread_index());
  }
  EXPECT_GT(max_thread, 0);

  ASSERT_TRUE(h.server.control_plane().ScaleTo(2));
  EXPECT_EQ(h.server.num_active_threads(), 2);
  for (core::Tenant* t : h.server.tenants()) {
    EXPECT_LT(t->thread_index(), 2) << "tenants evacuated from stopped "
                                       "threads";
  }
  EXPECT_FALSE(h.server.control_plane().ScaleTo(0));
  EXPECT_FALSE(h.server.control_plane().ScaleTo(7));
}

TEST(ControlPlaneTest, ServerStillServesAfterRescaling) {
  core::ServerOptions options;
  options.num_threads = 1;
  options.max_threads = 4;
  Harness h(options);
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine, {});
  auto session = client.AttachSession(tenant->handle());

  auto io1 = session->Read(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io1.Ready(); }));
  EXPECT_TRUE(io1.Get().ok());

  ASSERT_TRUE(h.server.control_plane().ScaleTo(3));
  auto io2 = session->Read(800, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io2.Ready(); }));
  EXPECT_TRUE(io2.Get().ok());

  ASSERT_TRUE(h.server.control_plane().ScaleTo(1));
  auto io3 = session->Read(1600, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io3.Ready(); }));
  EXPECT_TRUE(io3.Get().ok());
}

TEST(ControlPlaneTest, PersistentBurstersGetFlagged) {
  Harness h;
  // A tenant with a tiny reservation driven far above it.
  core::Tenant* tenant = h.LcTenant(1000, 1.0, Millis(2));
  client::ReflexClient client(h.sim, h.server, h.client_machine, {});
  auto session = client.AttachSession(tenant->handle());
  client::LoadGenSpec spec;
  spec.offered_iops = 50000;  // 50x the SLO
  spec.read_fraction = 1.0;
  client::LoadGenerator load(h.sim, *session, spec);
  load.Run(0, Millis(300));
  h.RunUntilDone(load.Done(), sim::Seconds(60));

  EXPECT_GT(h.server.control_plane().neg_limit_notifications(), 0);
  bool flagged = false;
  for (uint32_t handle : h.server.control_plane().flagged_tenants()) {
    flagged |= (handle == tenant->handle());
  }
  EXPECT_TRUE(flagged) << "control plane flags SLO renegotiation";
}

TEST(ControlPlaneTest, ShrinkThenGrowRestartsStoppedThreads) {
  core::ServerOptions options;
  options.num_threads = 3;
  options.max_threads = 6;
  Harness h(options);
  ASSERT_EQ(h.server.num_threads(), 3);

  ASSERT_TRUE(h.server.control_plane().ScaleTo(1));
  ASSERT_TRUE(h.server.control_plane().ScaleTo(3));
  EXPECT_EQ(h.server.num_active_threads(), 3);
  EXPECT_EQ(h.server.num_threads(), 3)
      << "growing after a shrink restarts the stopped threads instead "
         "of appending new ones (which would desync active_threads_ "
         "from the live thread indices)";
  EXPECT_EQ(h.server.shared().num_threads, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(h.server.thread(i).running()) << "thread " << i;
  }

  // End to end: a connection routed round-robin across the active
  // threads still reaches a live one.
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient::Options copts;
  copts.num_connections = 3;
  client::ReflexClient client(h.sim, h.server, h.client_machine, copts);
  auto session = client.AttachSession(tenant->handle());
  for (int c = 0; c < 3; ++c) {
    auto io = session->Read(c * 800, 8, nullptr, c);
    ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
    EXPECT_TRUE(io.Get().ok()) << "connection " << c;
  }
}

TEST(ControlPlaneTest, ScaleToClearsStaleEpochMarks) {
  core::ServerOptions options;
  options.num_threads = 3;
  options.max_threads = 3;
  Harness h(options);
  auto noop = [](core::Tenant&, core::PendingIo&&) {};

  // Thread 2 completes a round and marks the current epoch (1 of 3).
  h.server.thread(2).scheduler().RunRound(0, noop);
  EXPECT_EQ(h.server.shared().threads_marked.load(), 1);

  // Shrinking to 2 threads must discard that mark: it was collected
  // under a 3-thread quorum and thread 2 is no longer participating.
  ASSERT_TRUE(h.server.control_plane().ScaleTo(2));
  EXPECT_EQ(h.server.shared().threads_marked.load(), 0);

  h.server.shared().global_bucket.Donate(100.0);
  h.server.thread(0).scheduler().RunRound(0, noop);
  EXPECT_NEAR(h.server.shared().global_bucket.Tokens(), 100.0, 1e-9)
      << "one mark out of two must not complete the epoch; the stale "
         "pre-shrink mark would make this round reset the bucket";
}

TEST(ControlPlaneTest, MonitorStartsFromFreshUtilizationBaselines) {
  core::ServerOptions options;
  options.num_threads = 1;
  options.max_threads = 4;
  options.auto_scale = false;  // monitor started manually below
  options.monitor_interval = Millis(5);
  Harness h(options);
  core::Tenant* tenant = h.BeTenant();
  client::ReflexClient::Options copts;
  copts.num_connections = 8;
  client::ReflexClient client(h.sim, h.server, h.client_machine, copts);
  auto session = client.AttachSession(tenant->handle());

  // Saturate the single thread for 100ms with the monitor off, then
  // let the load drain completely.
  client::LoadGenSpec spec;
  spec.queue_depth = 256;
  spec.request_bytes = 1024;
  client::LoadGenerator load(h.sim, *session, spec);
  load.Run(Millis(10), Millis(100));
  ASSERT_TRUE(h.RunUntilDone(load.Done(), sim::Seconds(60)));
  ASSERT_EQ(h.server.num_active_threads(), 1);

  // The monitor's first window must measure utilization from now on,
  // not charge the whole loaded phase's busy time to one interval.
  h.server.control_plane().StartMonitor();
  h.RunUntilReady([] { return false; }, h.sim.Now() + Millis(50));
  EXPECT_EQ(h.server.num_active_threads(), 1)
      << "idle server scaled up from stale busy-time baselines";
  // Even a transient spurious scale-up leaves a second thread object
  // behind, so this catches scale-up-then-scale-down flapping too.
  EXPECT_EQ(h.server.num_threads(), 1)
      << "monitor transiently scaled up before settling back";
}

TEST(ControlPlaneTest, AutoScaleMonitorAddsThreads) {
  core::ServerOptions options;
  options.num_threads = 1;
  options.max_threads = 4;
  options.auto_scale = true;
  options.monitor_interval = Millis(5);
  Harness h(options);
  core::Tenant* tenant = h.BeTenant();
  client::ReflexClient::Options copts;
  copts.num_connections = 8;
  client::ReflexClient client(h.sim, h.server, h.client_machine, copts);
  auto session = client.AttachSession(tenant->handle());
  client::LoadGenSpec spec;
  spec.queue_depth = 256;  // saturate the single core
  spec.request_bytes = 1024;
  client::LoadGenerator load(h.sim, *session, spec);
  load.Run(Millis(10), Millis(120));
  h.RunUntilDone(load.Done(), sim::Seconds(60));
  EXPECT_GT(h.server.num_active_threads(), 1)
      << "monitor scaled up under saturation";
}

}  // namespace
}  // namespace reflex
