#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "client/load_generator.h"
#include "client/reflex_client.h"
#include "testing/harness.h"

namespace reflex {
namespace {

using client::IoResult;
using client::LoadGenSpec;
using client::LoadGenerator;
using client::ReflexClient;
using core::ReqStatus;
using core::SloSpec;
using core::TenantClass;
using sim::Micros;
using sim::Millis;
using testing::Harness;

ReflexClient::Options IxClient(int conns = 1) {
  ReflexClient::Options o;
  o.stack = net::StackCosts::IxDataplane();
  o.num_connections = conns;
  return o;
}

ReflexClient::Options LinuxClient(int conns = 1) {
  ReflexClient::Options o;
  o.stack = net::StackCosts::LinuxEpoll();
  o.num_connections = conns;
  return o;
}

TEST(ServerIntegrationTest, UnloadedReadLatencyMatchesTable2) {
  Harness h;
  core::Tenant* tenant = h.LcTenant();
  ReflexClient client(h.sim, h.server, h.client_machine, IxClient());
  auto session = client.AttachSession(tenant->handle());

  LoadGenSpec spec;
  spec.read_fraction = 1.0;
  spec.queue_depth = 1;
  spec.stop_after_ops = 400;
  spec.warmup_ops = 50;
  LoadGenerator gen(h.sim, *session, spec);
  gen.Run(0, 0);
  ASSERT_TRUE(h.RunUntilDone(gen.Done()));

  // Paper Table 2, ReFlex + IX client: 99us avg / 113us p95 for 4KB
  // random reads (local Flash is ~78, ReFlex adds ~21us).
  const double avg_us = gen.read_latency().Mean() / 1e3;
  const double p95_us = gen.read_latency().Percentile(0.95) / 1e3;
  EXPECT_GT(avg_us, 88.0);
  EXPECT_LT(avg_us, 112.0);
  EXPECT_GT(p95_us, 95.0);
  EXPECT_LT(p95_us, 130.0);
}

TEST(ServerIntegrationTest, UnloadedWriteLatencyMatchesTable2) {
  Harness h;
  // A QD-1 write stream completes every ~30us (~33K writes/s); the
  // reservation must exceed that or the scheduler paces the probe.
  core::Tenant* tenant = h.LcTenant(45000, 0.0);
  ReflexClient client(h.sim, h.server, h.client_machine, IxClient());
  auto session = client.AttachSession(tenant->handle());

  LoadGenSpec spec;
  spec.read_fraction = 0.0;
  spec.queue_depth = 1;
  spec.stop_after_ops = 400;
  spec.warmup_ops = 50;
  LoadGenerator gen(h.sim, *session, spec);
  gen.Run(0, 0);
  ASSERT_TRUE(h.RunUntilDone(gen.Done()));

  // Paper: 31us avg / 34us p95 (writes ack from device DRAM buffer).
  const double avg_us = gen.write_latency().Mean() / 1e3;
  EXPECT_GT(avg_us, 24.0);
  EXPECT_LT(avg_us, 42.0);
}

TEST(ServerIntegrationTest, LinuxClientAddsLatency) {
  Harness h;
  core::Tenant* tenant = h.LcTenant();

  auto measure = [&](ReflexClient::Options options) {
    ReflexClient client(h.sim, h.server, h.client_machine, options);
    auto session = client.AttachSession(tenant->handle());
    LoadGenSpec spec;
    spec.queue_depth = 1;
    spec.stop_after_ops = 300;
    spec.warmup_ops = 30;
    spec.seed = 123;
    LoadGenerator gen(h.sim, *session, spec);
    gen.Run(0, 0);
    EXPECT_TRUE(h.RunUntilDone(gen.Done(), h.sim.Now() + sim::Seconds(30)));
    return gen.read_latency().Mean() / 1e3;
  };

  const double ix_us = measure(IxClient());
  const double linux_us = measure(LinuxClient());
  // Table 2: Linux client adds ~18us over the IX client on reads.
  EXPECT_GT(linux_us - ix_us, 8.0);
  EXPECT_LT(linux_us - ix_us, 35.0);
}

TEST(ServerIntegrationTest, InbandRegistrationAndIo) {
  Harness h;
  ReflexClient client(h.sim, h.server, h.client_machine, IxClient());

  SloSpec slo;
  slo.iops = 30000;
  slo.read_fraction = 1.0;
  slo.latency = Millis(1);
  auto reg = client.Register(slo, TenantClass::kLatencyCritical);
  ASSERT_TRUE(h.RunUntilReady([&] { return reg.Ready(); }));
  EXPECT_EQ(reg.Get().status, ReqStatus::kOk);
  const uint32_t handle = reg.Get().handle;
  EXPECT_NE(handle, 0u);

  auto session = client.AttachSession(handle);
  ASSERT_NE(session, nullptr);
  auto io = session->Read(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
  EXPECT_TRUE(io.Get().ok());

  auto unreg = client.Unregister(handle);
  ASSERT_TRUE(h.RunUntilReady([&] { return unreg.Ready(); }));
  EXPECT_EQ(unreg.Get().status, ReqStatus::kOk);

  // I/O for an unregistered tenant now fails.
  auto io2 = session->Read(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io2.Ready(); }));
  EXPECT_EQ(io2.Get().status, ReqStatus::kNoSuchTenant);
}

TEST(ServerIntegrationTest, InadmissibleSloRejectedInband) {
  Harness h;
  ReflexClient client(h.sim, h.server, h.client_machine, IxClient());
  SloSpec slo;
  slo.iops = 10000000;  // 10M IOPS: far beyond the device
  slo.read_fraction = 0.5;
  slo.latency = Micros(500);
  auto reg = client.Register(slo, TenantClass::kLatencyCritical);
  ASSERT_TRUE(h.RunUntilReady([&] { return reg.Ready(); }));
  EXPECT_EQ(reg.Get().status, ReqStatus::kOutOfResources);
}

TEST(ServerIntegrationTest, AdmissionControlDirect) {
  Harness h;
  // Device A @500us p95 supports ~420K tokens/s. A 100K IOPS 80%-read
  // tenant reserves 280K tokens/s; two of them exceed the cap.
  SloSpec slo;
  slo.iops = 100000;
  slo.read_fraction = 0.8;
  slo.latency = Micros(500);
  ReqStatus s1, s2;
  EXPECT_NE(h.server.RegisterTenant(slo, TenantClass::kLatencyCritical, &s1),
            nullptr);
  EXPECT_EQ(s1, ReqStatus::kOk);
  EXPECT_EQ(h.server.RegisterTenant(slo, TenantClass::kLatencyCritical, &s2),
            nullptr);
  EXPECT_EQ(s2, ReqStatus::kOutOfResources);
}

TEST(ServerIntegrationTest, StrictAclDeniesIo) {
  core::ServerOptions options;
  options.strict_acl = true;
  Harness h(options);
  h.server.acl().SetStrict(true);
  core::Tenant* tenant = h.LcTenant();
  h.server.acl().AddNamespace(1, 0, 1 << 20);
  h.server.acl().GrantTenant(tenant->handle(), 1, /*read=*/true,
                             /*write=*/false);
  h.server.acl().AllowClient("client-0", tenant->handle());
  ReflexClient client(h.sim, h.server, h.client_machine, IxClient());
  auto session = client.AttachSession(tenant->handle());
  ASSERT_NE(session, nullptr);

  auto read_in = session->Read(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return read_in.Ready(); }));
  EXPECT_TRUE(read_in.Get().ok());

  auto write_denied = session->Write(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return write_denied.Ready(); }));
  EXPECT_EQ(write_denied.Get().status, ReqStatus::kAccessDenied);

  auto read_outside = session->Read(1 << 21, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return read_outside.Ready(); }));
  EXPECT_EQ(read_outside.Get().status, ReqStatus::kAccessDenied);
}

TEST(ServerIntegrationTest, InvalidRangeRejected) {
  Harness h;
  core::Tenant* tenant = h.LcTenant();
  ReflexClient client(h.sim, h.server, h.client_machine, IxClient());
  auto session = client.AttachSession(tenant->handle());
  auto io = session->Read(h.device.profile().capacity_sectors, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
  EXPECT_EQ(io.Get().status, ReqStatus::kInvalidRange);
}

TEST(ServerIntegrationTest, DataRoundTripThroughServer) {
  Harness h;
  core::Tenant* tenant = h.LcTenant();
  ReflexClient client(h.sim, h.server, h.client_machine, IxClient());
  auto session = client.AttachSession(tenant->handle());

  std::vector<uint8_t> out(4096);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(i * 7);
  }
  auto w = session->Write(2048, 8, out.data());
  ASSERT_TRUE(h.RunUntilReady([&] { return w.Ready(); }));
  ASSERT_TRUE(w.Get().ok());

  std::vector<uint8_t> in(4096, 0);
  auto r = session->Read(2048, 8, in.data());
  ASSERT_TRUE(h.RunUntilReady([&] { return r.Ready(); }));
  ASSERT_TRUE(r.Get().ok());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 4096), 0);
}

TEST(ServerIntegrationTest, SingleCoreThroughputNear850K) {
  Harness h;
  core::Tenant* tenant = h.LcTenant(400000, 1.0, Millis(2));
  ReflexClient client(h.sim, h.server, h.client_machine, IxClient(16));
  auto session = client.AttachSession(tenant->handle());

  LoadGenSpec spec;
  spec.read_fraction = 1.0;
  spec.request_bytes = 1024;  // 1KB as in section 5.3
  spec.queue_depth = 512;
  spec.seed = 5;
  LoadGenerator gen(h.sim, *session, spec);
  gen.Run(Millis(50), Millis(250));
  ASSERT_TRUE(h.RunUntilDone(gen.Done()));

  // Paper: ReFlex serves up to 850K IOPS with one core (1KB reads).
  EXPECT_GT(gen.AchievedIops(), 700000.0);
  EXPECT_LT(gen.AchievedIops(), 1000000.0);

  // Section 5.3: ~20% of cycles in TCP, 2-8% in QoS scheduling.
  const core::DataplaneStats stats = h.server.AggregateStats();
  const double tcp_share = static_cast<double>(stats.tcp_ns) /
                           static_cast<double>(stats.busy_ns);
  const double sched_share = static_cast<double>(stats.sched_ns) /
                             static_cast<double>(stats.busy_ns);
  EXPECT_GT(tcp_share, 0.10);
  EXPECT_LT(tcp_share, 0.45);
  EXPECT_GT(sched_share, 0.005);
  EXPECT_LT(sched_share, 0.12);
}

TEST(ServerIntegrationTest, DeterministicEndToEnd) {
  auto run_once = [] {
    Harness h;
    core::Tenant* tenant = h.LcTenant();
    ReflexClient client(h.sim, h.server, h.client_machine, IxClient());
    auto session = client.AttachSession(tenant->handle());
    LoadGenSpec spec;
    spec.read_fraction = 0.8;
    spec.queue_depth = 4;
    spec.stop_after_ops = 200;
    LoadGenerator gen(h.sim, *session, spec);
    gen.Run(0, 0);
    h.RunUntilDone(gen.Done());
    return std::make_tuple(gen.read_latency().Mean(),
                           gen.read_latency().Percentile(0.95),
                           gen.write_latency().Mean(),
                           h.sim.EventsProcessed());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ServerIntegrationTest, UdpTransportImprovesThroughput) {
  auto peak_iops = [](net::Transport transport) {
    core::ServerOptions options;
    options.transport = transport;
    Harness h(options);
    core::Tenant* tenant = h.BeTenant();
    ReflexClient client(h.sim, h.server, h.client_machine, IxClient(16));
    auto session = client.AttachSession(tenant->handle());
    LoadGenSpec spec;
    spec.request_bytes = 1024;
    spec.queue_depth = 512;
    spec.seed = 5;
    LoadGenerator gen(h.sim, *session, spec);
    gen.Run(Millis(40), Millis(160));
    h.RunUntilDone(gen.Done());
    return gen.AchievedIops();
  };
  const double tcp = peak_iops(net::Transport::kTcp);
  const double udp = peak_iops(net::Transport::kUdp);
  // Section 4.1: lighter transports raise per-core throughput.
  EXPECT_GT(udp, tcp * 1.05);
}

TEST(ServerIntegrationTest, TenantCountersTrackCompletions) {
  Harness h;
  core::Tenant* tenant = h.LcTenant();
  ReflexClient client(h.sim, h.server, h.client_machine, IxClient());
  auto session = client.AttachSession(tenant->handle());
  LoadGenSpec spec;
  spec.read_fraction = 0.5;
  spec.queue_depth = 2;
  spec.stop_after_ops = 100;
  spec.seed = 777;
  LoadGenerator gen(h.sim, *session, spec);
  gen.Run(0, 0);
  ASSERT_TRUE(h.RunUntilDone(gen.Done()));
  EXPECT_EQ(tenant->completed_reads + tenant->completed_writes, 100);
  EXPECT_EQ(tenant->submitted_reads, tenant->completed_reads);
  EXPECT_EQ(tenant->submitted_writes, tenant->completed_writes);
  EXPECT_GT(tenant->tokens_spent, 0.0);
}

}  // namespace
}  // namespace reflex
