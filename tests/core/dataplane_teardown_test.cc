// Teardown-leak regression: coroutine frames use suspend_never at
// final suspend, so a frame only self-destructs when its body runs to
// completion. A dataplane loop (or migration batch, or autoscaler
// loop) parked on an await when the simulation stops must be destroyed
// explicitly by its owner's destructor -- pre-fix, tearing a server
// down mid-flight leaked every parked frame (caught under ASan).

#include <gtest/gtest.h>

#include "client/reflex_client.h"
#include "cluster/cluster_client.h"
#include "cluster/cluster_control_plane.h"
#include "cluster/migration.h"
#include "testing/cluster_harness.h"
#include "testing/harness.h"

namespace reflex {
namespace {

using client::ReflexClient;
using cluster::MigrationCoordinator;
using core::SloSpec;
using core::TenantClass;
using testing::ClusterHarness;
using testing::Harness;

TEST(DataplaneTeardownTest, ServerTornDownWithLoopsParkedIdle) {
  Harness h;
  h.LcTenant();
  // The dataplane loops are parked on their wake futures; destructors
  // must reclaim the suspended frames.
  h.sim.RunUntil(sim::Micros(50));
}

TEST(DataplaneTeardownTest, ServerTornDownWithIoInFlight) {
  Harness h;
  core::Tenant* tenant = h.LcTenant();
  ReflexClient client(h.sim, h.server, h.client_machine,
                      ReflexClient::Options());
  auto session = client.AttachSession(tenant->handle());
  ASSERT_NE(session, nullptr);
  auto read = session->Read(0, 8);
  // Stop mid-request: the loop is awaiting the device completion and
  // the client is awaiting the response. Neither future ever resolves.
  h.sim.RunUntil(h.sim.Now() + sim::Micros(20));
  EXPECT_FALSE(read.Ready()) << "teardown must happen mid-flight to "
                                "exercise the parked-frame path";
}

TEST(DataplaneTeardownTest, ServerRestartCycleDoesNotLeakLoops) {
  Harness h;
  h.LcTenant();
  h.sim.RunUntil(sim::Micros(20));
  for (int t = 0; t < h.server.num_active_threads(); ++t) {
    h.server.thread(t).Shutdown();
  }
  h.sim.RunUntil(h.sim.Now() + sim::Micros(20));
  for (int t = 0; t < h.server.num_active_threads(); ++t) {
    h.server.thread(t).Start();
  }
  h.sim.RunUntil(h.sim.Now() + sim::Micros(20));
}

TEST(DataplaneTeardownTest, ClusterTornDownMidMigrationReclaimsAllFrames) {
  cluster::FlashClusterOptions options =
      ClusterHarness::MakeOptions(2, /*stripe_sectors=*/8);
  options.shard_map.migration_slots = 8;
  ClusterHarness h(options);
  MigrationCoordinator coordinator(h.cluster, h.net);
  auto session = h.client.OpenSession(SloSpec{}, TenantClass::kBestEffort);
  ASSERT_NE(session, nullptr);

  cluster::ClusterControlPlane::AutoscalerOptions aopts;
  aopts.period = sim::Millis(1);
  h.cluster.control_plane().StartAutoscaler(coordinator, aopts);

  auto write = session->Write(0, 8);
  auto done = coordinator.MigrateRange(0, 1, 0, 2);
  // Stop with the batch mid-copy and the autoscaler parked on its
  // Delay: the coordinator and control-plane destructors must destroy
  // both suspended frames along with every dataplane loop.
  h.sim.RunUntil(h.sim.Now() + sim::Micros(10));
  EXPECT_TRUE(coordinator.busy());
  EXPECT_FALSE(done.Ready());
}

}  // namespace
}  // namespace reflex
