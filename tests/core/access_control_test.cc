#include "core/access_control.h"

#include <gtest/gtest.h>

namespace reflex::core {
namespace {

TEST(AccessControlTest, PermissiveByDefault) {
  AccessControl acl;
  EXPECT_TRUE(acl.CheckConnect("anyone", 7));
  EXPECT_EQ(acl.CheckIo(7, ReqType::kRead, 0, 8), ReqStatus::kOk);
  EXPECT_EQ(acl.CheckIo(7, ReqType::kWrite, 1 << 20, 8), ReqStatus::kOk);
}

TEST(AccessControlTest, StrictDeniesUngranted) {
  AccessControl acl;
  acl.SetStrict(true);
  EXPECT_FALSE(acl.CheckConnect("client1", 7));
  EXPECT_EQ(acl.CheckIo(7, ReqType::kRead, 0, 8),
            ReqStatus::kAccessDenied);
}

TEST(AccessControlTest, ConnectGrant) {
  AccessControl acl;
  acl.SetStrict(true);
  acl.AllowClient("client1", 7);
  EXPECT_TRUE(acl.CheckConnect("client1", 7));
  EXPECT_FALSE(acl.CheckConnect("client2", 7));
  EXPECT_FALSE(acl.CheckConnect("client1", 8));
}

TEST(AccessControlTest, NamespaceBoundsEnforced) {
  AccessControl acl;
  acl.SetStrict(true);
  acl.AddNamespace(1, 1000, 500);
  acl.GrantTenant(7, 1, /*read=*/true, /*write=*/false);
  // Inside the namespace.
  EXPECT_EQ(acl.CheckIo(7, ReqType::kRead, 1000, 8), ReqStatus::kOk);
  EXPECT_EQ(acl.CheckIo(7, ReqType::kRead, 1492, 8), ReqStatus::kOk);
  // Straddles the end.
  EXPECT_EQ(acl.CheckIo(7, ReqType::kRead, 1496, 8),
            ReqStatus::kAccessDenied);
  // Before the start.
  EXPECT_EQ(acl.CheckIo(7, ReqType::kRead, 992, 8),
            ReqStatus::kAccessDenied);
}

TEST(AccessControlTest, ReadWritePermissionsIndependent) {
  AccessControl acl;
  acl.SetStrict(true);
  acl.AddNamespace(1, 0, 10000);
  acl.GrantTenant(7, 1, /*read=*/true, /*write=*/false);
  acl.GrantTenant(8, 1, /*read=*/false, /*write=*/true);
  EXPECT_EQ(acl.CheckIo(7, ReqType::kRead, 0, 8), ReqStatus::kOk);
  EXPECT_EQ(acl.CheckIo(7, ReqType::kWrite, 0, 8),
            ReqStatus::kAccessDenied);
  EXPECT_EQ(acl.CheckIo(8, ReqType::kWrite, 0, 8), ReqStatus::kOk);
  EXPECT_EQ(acl.CheckIo(8, ReqType::kRead, 0, 8),
            ReqStatus::kAccessDenied);
}

TEST(AccessControlTest, MultipleNamespacesAnyMatchAllows) {
  AccessControl acl;
  acl.SetStrict(true);
  acl.AddNamespace(1, 0, 100);
  acl.AddNamespace(2, 1000, 100);
  acl.GrantTenant(7, 1, true, true);
  acl.GrantTenant(7, 2, true, true);
  EXPECT_EQ(acl.CheckIo(7, ReqType::kRead, 50, 8), ReqStatus::kOk);
  EXPECT_EQ(acl.CheckIo(7, ReqType::kRead, 1050, 8), ReqStatus::kOk);
  EXPECT_EQ(acl.CheckIo(7, ReqType::kRead, 500, 8),
            ReqStatus::kAccessDenied);
}

TEST(AccessControlTest, CheckIoIndependentOfGrantInsertionOrder) {
  // The grant sets are ordered (std::set) so CheckIo probes namespaces
  // in ascending id order no matter how grants were issued. Two ACLs
  // with the same grants inserted in opposite orders must agree on
  // every decision (this walk used to traverse an unordered_set, the
  // one hash-order-dependent iteration in src/).
  AccessControl fwd, rev;
  for (AccessControl* acl : {&fwd, &rev}) {
    acl->SetStrict(true);
    acl->AddNamespace(1, 0, 100);
    acl->AddNamespace(2, 100, 100);
    acl->AddNamespace(3, 200, 100);
  }
  for (uint32_t ns = 1; ns <= 3; ++ns) fwd.GrantTenant(7, ns, true, false);
  for (uint32_t ns = 3; ns >= 1; --ns) rev.GrantTenant(7, ns, true, false);
  for (uint64_t lba = 0; lba < 320; lba += 16) {
    EXPECT_EQ(fwd.CheckIo(7, ReqType::kRead, lba, 8),
              rev.CheckIo(7, ReqType::kRead, lba, 8))
        << "at lba " << lba;
    EXPECT_EQ(fwd.CheckIo(7, ReqType::kWrite, lba, 8),
              rev.CheckIo(7, ReqType::kWrite, lba, 8))
        << "at lba " << lba;
  }
}

TEST(AccessControlTest, NamespaceContains) {
  BlockNamespace ns{1, 100, 50};
  EXPECT_TRUE(ns.Contains(100, 50));
  EXPECT_TRUE(ns.Contains(149, 1));
  EXPECT_FALSE(ns.Contains(149, 2));
  EXPECT_FALSE(ns.Contains(99, 1));
}

}  // namespace
}  // namespace reflex::core
