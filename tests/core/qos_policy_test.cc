// Unit tests for the pluggable QoS policy framework: kind parsing,
// factory selection, QWin window-quota mechanics and the adaptive
// best-effort inflight cap, plus a token-conservation check that every
// policy must pass (the same ledger the simtest probes verify).

#include "core/qos_policy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/cost_model.h"
#include "core/qos_scheduler.h"
#include "core/tenant.h"
#include "sim/time.h"

namespace reflex::core {
namespace {

using sim::Micros;
using sim::Millis;
using sim::TimeNs;

class QosPolicyTest : public ::testing::Test {
 protected:
  QosPolicyTest() : cost_model_(10.0, 0.5) {
    // Mixed-load pricing: 4KB reads cost 1 token, 4KB writes cost 10.
    shared_.read_ratio.Observe(0, /*is_read=*/false, 1000.0);
  }

  std::unique_ptr<QosScheduler> NewSched(QosPolicyKind kind) {
    QosScheduler::Config config;
    config.policy = kind;
    return std::make_unique<QosScheduler>(shared_, cost_model_, config);
  }

  PendingIo MakeIo(ReqType type, uint32_t sectors = 8) {
    PendingIo io;
    io.msg.type = type;
    io.msg.sectors = sectors;
    return io;
  }

  void EnqueueN(QosScheduler& sched, Tenant* t, int n, ReqType type,
                TimeNs now = 0, uint32_t sectors = 8) {
    for (int i = 0; i < n; ++i) {
      sched.Enqueue(now, t, MakeIo(type, sectors));
    }
  }

  QosScheduler::SubmitFn Count() {
    return [this](Tenant&, PendingIo&&) { ++submitted_; };
  }

  SchedulerShared shared_;
  RequestCostModel cost_model_;
  int submitted_ = 0;
};

TEST_F(QosPolicyTest, KindNamesRoundTrip) {
  for (QosPolicyKind kind :
       {QosPolicyKind::kTokenBucket, QosPolicyKind::kQwin,
        QosPolicyKind::kAdaptiveBe}) {
    QosPolicyKind parsed;
    ASSERT_TRUE(QosPolicyKindFromName(QosPolicyKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  QosPolicyKind untouched = QosPolicyKind::kQwin;
  EXPECT_FALSE(QosPolicyKindFromName("garbage", &untouched));
  EXPECT_EQ(untouched, QosPolicyKind::kQwin);
}

TEST_F(QosPolicyTest, FactorySelectsConfiguredPolicy) {
  for (QosPolicyKind kind :
       {QosPolicyKind::kTokenBucket, QosPolicyKind::kQwin,
        QosPolicyKind::kAdaptiveBe}) {
    auto sched = NewSched(kind);
    EXPECT_EQ(sched->policy().kind(), kind);
    EXPECT_STREQ(sched->policy().name(), QosPolicyKindName(kind));
  }
}

TEST_F(QosPolicyTest, QwinGrantsBackloggedQuotaCappedAtBurst) {
  auto sched = NewSched(QosPolicyKind::kQwin);
  SloSpec slo;
  slo.latency = Micros(1000);  // window = 0.5 * 1ms = 500us
  Tenant t(1, TenantClass::kLatencyCritical, slo);
  t.set_token_rate(100000.0);  // share = 50 tokens per window
  sched->AddTenant(&t);

  // 200 one-token reads of backlog: the quota is capped at
  // burst_cap * share = 2 * 50 = 100, not backlog + share = 250.
  EnqueueN(*sched, &t, 200, ReqType::kRead);
  sched->RunRound(0, Count());
  EXPECT_EQ(submitted_, 100);
  EXPECT_NEAR(t.tokens(), 0.0, 1e-9);

  // Mid-window rounds grant nothing: the quota is per window.
  sched->RunRound(Micros(100), Count());
  sched->RunRound(Micros(300), Count());
  EXPECT_EQ(submitted_, 100);

  // The next window opens at 500us and re-grants.
  sched->RunRound(Micros(500), Count());
  EXPECT_EQ(submitted_, 200);

  const auto& qwin = static_cast<const QwinPolicy&>(sched->policy());
  EXPECT_EQ(qwin.windows_opened(), 2);
}

TEST_F(QosPolicyTest, QwinDonatesUnspentQuotaAtWindowClose) {
  // Two participating threads so the end-of-round bucket reset does
  // not hide the donation from this single scheduler.
  shared_.num_threads = 2;
  auto sched = NewSched(QosPolicyKind::kQwin);
  SloSpec slo;
  slo.latency = Micros(1000);
  Tenant t(1, TenantClass::kLatencyCritical, slo);
  t.set_token_rate(100000.0);  // share = 50 tokens per window
  sched->AddTenant(&t);

  sched->RunRound(0, Count());  // window 1: quota 50, no demand
  EXPECT_NEAR(t.tokens(), 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(shared_.global_bucket.Tokens(), 0.0);

  sched->RunRound(Micros(500), Count());  // window 2: leftover donated
  EXPECT_NEAR(shared_.global_bucket.Tokens(), 50.0, 1e-9);
  EXPECT_NEAR(shared_.tokens_donated_total, 50.0, 1e-9);
  EXPECT_NEAR(t.tokens(), 50.0, 1e-9);  // fresh window-2 quota
}

TEST_F(QosPolicyTest, QwinOverdrawIsRepaidFromNextQuota) {
  auto sched = NewSched(QosPolicyKind::kQwin);
  SloSpec slo;
  slo.latency = Micros(1000);
  Tenant t(1, TenantClass::kLatencyCritical, slo);
  t.set_token_rate(10000.0);  // share = 5, quota cap = 10
  sched->AddTenant(&t);

  // One 64KB write costs 160 tokens, far above the 10-token quota: it
  // is admitted (tokens > 0) and overdraws the window.
  EnqueueN(*sched, &t, 1, ReqType::kWrite, 0, 128);
  sched->RunRound(0, Count());
  EXPECT_EQ(submitted_, 1);
  EXPECT_NEAR(t.tokens(), -150.0, 1e-9);

  // The debt is repaid from later quotas, never donated away: with no
  // backlog the window grants only the share (5).
  sched->RunRound(Micros(500), Count());
  EXPECT_NEAR(t.tokens(), -145.0, 1e-9);
  EXPECT_DOUBLE_EQ(shared_.tokens_donated_total, 0.0);
}

TEST_F(QosPolicyTest, AdaptiveBeCapsInflightAtMinCapWhileUnprimed) {
  auto sched = NewSched(QosPolicyKind::kAdaptiveBe);
  Tenant t(1, TenantClass::kBestEffort, SloSpec{});
  t.set_token_rate(1e6);
  sched->AddTenant(&t);

  EnqueueN(*sched, &t, 100, ReqType::kRead);
  sched->RunRound(0, Count());  // dt = 0: no tokens yet
  EXPECT_EQ(submitted_, 0);

  // 10ms at 1M tokens/s covers the whole backlog, but the inflight cap
  // starts at the 64KB floor: exactly 16 4KB requests.
  sched->RunRound(Millis(10), Count());
  EXPECT_EQ(submitted_, 16);
  const auto& adaptive =
      static_cast<const AdaptiveBePolicy&>(sched->policy());
  EXPECT_EQ(adaptive.cap_bytes(), 64 * 1024);

  // While those bytes sit at the device, nothing more is admitted.
  t.inflight_bytes = 16 * 4096;
  sched->RunRound(Millis(20), Count());
  EXPECT_EQ(submitted_, 16);
}

TEST_F(QosPolicyTest, AdaptiveBeRaisesCapWithMeasuredServiceRate) {
  QosScheduler::Config config;
  config.policy = QosPolicyKind::kAdaptiveBe;
  auto sched =
      std::make_unique<QosScheduler>(shared_, cost_model_, config);
  Tenant t(1, TenantClass::kBestEffort, SloSpec{});
  t.set_token_rate(1e6);
  sched->AddTenant(&t);

  EnqueueN(*sched, &t, 100, ReqType::kRead);
  sched->RunRound(0, Count());
  sched->RunRound(Millis(10), Count());  // 16 admitted at the floor cap
  ASSERT_EQ(submitted_, 16);

  // The device drains everything and reports 10MB completed: the
  // measured rate is 10MB / 10ms = 1GB/s, EWMA'd into the estimate,
  // and the cap becomes rate * drain_target.
  t.inflight_bytes = 0;
  t.completed_bytes = 10 * 1000 * 1000;
  sched->RunRound(Millis(20), Count());

  const auto& adaptive =
      static_cast<const AdaptiveBePolicy&>(sched->policy());
  const double expected_rate = config.adaptive_rate_alpha * 1e9;
  EXPECT_NEAR(adaptive.service_rate_bytes_per_sec(), expected_rate,
              expected_rate * 1e-9);
  const int64_t expected_cap = std::llround(
      expected_rate * sim::ToSeconds(config.adaptive_drain_target));
  EXPECT_EQ(adaptive.cap_bytes(), expected_cap);

  // The wider cap admits more of the backlog in the same round.
  const int fit = static_cast<int>(expected_cap / 4096);
  EXPECT_EQ(submitted_, 16 + fit);
}

TEST_F(QosPolicyTest, ConservationLedgerClosesUnderEveryPolicy) {
  for (QosPolicyKind kind :
       {QosPolicyKind::kTokenBucket, QosPolicyKind::kQwin,
        QosPolicyKind::kAdaptiveBe}) {
    SCOPED_TRACE(QosPolicyKindName(kind));
    SchedulerShared shared;
    shared.read_ratio.Observe(0, /*is_read=*/false, 1000.0);
    QosScheduler::Config config;
    config.policy = kind;
    QosScheduler sched(shared, cost_model_, config);

    SloSpec slo;
    slo.latency = Micros(1000);
    Tenant lc(1, TenantClass::kLatencyCritical, slo);
    lc.set_token_rate(50000.0);
    Tenant be(2, TenantClass::kBestEffort, SloSpec{});
    be.set_token_rate(20000.0);
    sched.AddTenant(&lc);
    sched.AddTenant(&be);

    auto sink = [](Tenant&, PendingIo&&) {};
    for (int round = 0; round < 10; ++round) {
      const TimeNs now = Millis(round);
      for (int i = 0; i < 5; ++i) {
        sched.Enqueue(now, &lc,
                      MakeIo(i % 4 == 0 ? ReqType::kWrite : ReqType::kRead));
        sched.Enqueue(now, &be,
                      MakeIo(i % 2 == 0 ? ReqType::kRead : ReqType::kWrite));
      }
      sched.RunRound(now, sink);
    }
    sched.RemoveTenant(&lc);
    sched.RemoveTenant(&be);

    // All balances retired: generated must equal the sinks exactly
    // (modulo double summation noise). num_threads == 1, so every
    // round's bucket residue was discarded by the epoch reset.
    const double accounted =
        shared.tokens_spent_total + shared.tokens_discarded_total +
        shared.tokens_retired_total + shared.global_bucket.Tokens();
    EXPECT_NEAR(shared.tokens_generated_total, accounted,
                1.0 + 1e-9 * std::abs(shared.tokens_generated_total));
    // Bucket flow: donations fully account for claims + discards +
    // residue.
    EXPECT_NEAR(shared.tokens_donated_total,
                shared.tokens_claimed_total +
                    shared.tokens_discarded_total +
                    shared.global_bucket.Tokens(),
                1.0 + 1e-9 * std::abs(shared.tokens_donated_total));
  }
}

}  // namespace
}  // namespace reflex::core
