// End-to-end property sweeps (TEST_P): for a grid of server shapes and
// workload mixes, run real traffic through the full stack and check
// conservation invariants -- every request is answered exactly once,
// server counters agree with client counters, and reruns are
// bit-identical.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "client/load_generator.h"
#include "client/reflex_client.h"
#include "testing/harness.h"

namespace reflex {
namespace {

using client::LoadGenSpec;
using client::LoadGenerator;
using client::ReflexClient;
using core::TenantClass;
using sim::Millis;
using testing::Harness;

// (server threads, tenants, read fraction, seed)
using Shape = std::tuple<int, int, double, uint64_t>;

class EndToEndPropertyTest : public ::testing::TestWithParam<Shape> {};

struct RunResult {
  int64_t client_ops = 0;
  int64_t client_errors = 0;
  int64_t server_rx = 0;
  int64_t server_tx = 0;
  int64_t tenant_submitted = 0;
  int64_t tenant_completed = 0;
  int64_t device_ops = 0;
  int64_t events = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult RunOnce(int threads, int tenants, double read_fraction,
                  uint64_t seed) {
  core::ServerOptions options;
  options.num_threads = threads;
  Harness h(options, flash::DeviceProfile::DeviceA(), seed);

  std::vector<std::unique_ptr<ReflexClient>> clients;
  std::vector<std::unique_ptr<client::TenantSession>> sessions;
  std::vector<std::unique_ptr<LoadGenerator>> generators;
  std::vector<core::Tenant*> tenant_ptrs;
  for (int i = 0; i < tenants; ++i) {
    core::Tenant* t = h.BeTenant();
    tenant_ptrs.push_back(t);
    ReflexClient::Options copts;
    copts.num_connections = 2;
    copts.seed = seed + i;
    clients.push_back(std::make_unique<ReflexClient>(
        h.sim, h.server, h.client_machine, copts));
    sessions.push_back(clients.back()->AttachSession(t->handle()));
    LoadGenSpec spec;
    spec.read_fraction = read_fraction;
    spec.queue_depth = 4;
    spec.stop_after_ops = 300;
    spec.seed = seed * 31 + i;
    generators.push_back(std::make_unique<LoadGenerator>(
        h.sim, *sessions.back(), spec));
  }
  for (auto& g : generators) g->Run(0, 0);
  for (auto& g : generators) {
    EXPECT_TRUE(h.RunUntilDone(g->Done(), sim::Seconds(120)));
  }
  // Drain any in-flight responses.
  h.sim.RunUntil(h.sim.Now() + Millis(10));

  RunResult result;
  for (auto& g : generators) {
    result.client_ops += g->ops_in_window();
    result.client_errors += g->errors();
  }
  const core::DataplaneStats stats = h.server.AggregateStats();
  result.server_rx = stats.requests_rx;
  result.server_tx = stats.responses_tx;
  for (core::Tenant* t : tenant_ptrs) {
    result.tenant_submitted += t->submitted_reads + t->submitted_writes;
    result.tenant_completed += t->completed_reads + t->completed_writes;
  }
  result.device_ops = h.device.stats().reads_completed +
                      h.device.stats().writes_completed;
  result.events = h.sim.EventsProcessed();
  return result;
}

TEST_P(EndToEndPropertyTest, ConservationAndDeterminism) {
  const auto [threads, tenants, read_fraction, seed] = GetParam();
  RunResult r = RunOnce(threads, tenants, read_fraction, seed);

  const int64_t expected_ops = int64_t{300} * tenants;
  // Every op completed, none errored, none duplicated or lost.
  EXPECT_EQ(r.client_ops, expected_ops);
  EXPECT_EQ(r.client_errors, 0);
  EXPECT_EQ(r.server_rx, expected_ops);
  EXPECT_EQ(r.server_tx, expected_ops);
  EXPECT_EQ(r.tenant_submitted, expected_ops);
  EXPECT_EQ(r.tenant_completed, expected_ops);
  EXPECT_EQ(r.device_ops, expected_ops);

  // Bit-identical on rerun.
  EXPECT_EQ(RunOnce(threads, tenants, read_fraction, seed), r);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EndToEndPropertyTest,
    ::testing::Values(Shape{1, 1, 1.0, 1}, Shape{1, 1, 0.0, 2},
                      Shape{1, 4, 0.8, 3}, Shape{2, 2, 0.5, 4},
                      Shape{2, 6, 0.9, 5}, Shape{4, 8, 0.7, 6},
                      Shape{3, 3, 0.25, 7}));

}  // namespace
}  // namespace reflex
