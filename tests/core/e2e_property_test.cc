// End-to-end property sweeps (TEST_P): for a grid of server shapes and
// workload mixes, run real traffic through the full stack and check
// conservation invariants -- every request is answered exactly once,
// server counters agree with client counters, and reruns are
// bit-identical.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "client/load_generator.h"
#include "client/reflex_client.h"
#include "testing/harness.h"
#include "testing/load_fixture.h"

namespace reflex {
namespace {

using core::TenantClass;
using sim::Millis;
using testing::Harness;
using testing::SeededLoad;

// (server threads, tenants, read fraction, seed)
using Shape = std::tuple<int, int, double, uint64_t>;

class EndToEndPropertyTest : public ::testing::TestWithParam<Shape> {};

struct RunResult {
  int64_t client_ops = 0;
  int64_t client_errors = 0;
  int64_t server_rx = 0;
  int64_t server_tx = 0;
  int64_t tenant_submitted = 0;
  int64_t tenant_completed = 0;
  int64_t device_ops = 0;
  int64_t events = 0;

  bool operator==(const RunResult&) const = default;
};

RunResult RunOnce(int threads, int tenants, double read_fraction,
                  uint64_t seed) {
  core::ServerOptions options;
  options.num_threads = threads;
  Harness h(options, flash::DeviceProfile::DeviceA(), seed);

  SeededLoad::Spec spec;
  spec.tenants = tenants;
  spec.read_fraction = read_fraction;
  spec.seed = seed;
  SeededLoad load(h, spec);
  load.Start();
  EXPECT_TRUE(load.AwaitAll());

  RunResult result;
  result.client_ops = load.TotalOps();
  result.client_errors = load.TotalErrors();
  const core::DataplaneStats stats = h.server.AggregateStats();
  result.server_rx = stats.requests_rx;
  result.server_tx = stats.responses_tx;
  for (core::Tenant* t : load.tenants) {
    result.tenant_submitted += t->submitted_reads + t->submitted_writes;
    result.tenant_completed += t->completed_reads + t->completed_writes;
  }
  result.device_ops = h.device.stats().reads_completed +
                      h.device.stats().writes_completed;
  result.events = h.sim.EventsProcessed();
  return result;
}

TEST_P(EndToEndPropertyTest, ConservationAndDeterminism) {
  const auto [threads, tenants, read_fraction, seed] = GetParam();
  RunResult r = RunOnce(threads, tenants, read_fraction, seed);

  const int64_t expected_ops = int64_t{300} * tenants;
  // Every op completed, none errored, none duplicated or lost.
  EXPECT_EQ(r.client_ops, expected_ops);
  EXPECT_EQ(r.client_errors, 0);
  EXPECT_EQ(r.server_rx, expected_ops);
  EXPECT_EQ(r.server_tx, expected_ops);
  EXPECT_EQ(r.tenant_submitted, expected_ops);
  EXPECT_EQ(r.tenant_completed, expected_ops);
  EXPECT_EQ(r.device_ops, expected_ops);

  // Bit-identical on rerun.
  EXPECT_EQ(RunOnce(threads, tenants, read_fraction, seed), r);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EndToEndPropertyTest,
    ::testing::Values(Shape{1, 1, 1.0, 1}, Shape{1, 1, 0.0, 2},
                      Shape{1, 4, 0.8, 3}, Shape{2, 2, 0.5, 4},
                      Shape{2, 6, 0.9, 5}, Shape{4, 8, 0.7, 6},
                      Shape{3, 3, 0.25, 7}));

}  // namespace
}  // namespace reflex
