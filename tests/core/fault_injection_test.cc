#include <gtest/gtest.h>

#include "client/reflex_client.h"
#include "sim/fault.h"
#include "testing/harness.h"

namespace reflex {
namespace {

using core::ReqStatus;
using sim::FaultKind;
using sim::FaultPlan;
using sim::Micros;
using sim::Millis;
using testing::Harness;
using testing::RetryingClientOptions;

TEST(FaultInjectionTest, IdlePlanLeavesTimingBitIdentical) {
  sim::TimeNs baseline = 0;
  for (int run = 0; run < 2; ++run) {
    Harness h;
    FaultPlan plan(h.sim, 1234);
    if (run == 1) {
      // Attached everywhere, but with no probabilities or windows.
      h.device.SetFaultPlan(&plan);
      h.net.SetFaultPlan(&plan);
      h.server.SetFaultPlan(&plan);
    }
    core::Tenant* tenant = h.LcTenant();
    client::ReflexClient client(h.sim, h.server, h.client_machine, {});
    auto session = client.AttachSession(tenant->handle());
    auto io = session->Read(0, 8);
    ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
    ASSERT_TRUE(io.Get().ok());
    if (run == 0) {
      baseline = io.Get().complete_time;
    } else {
      EXPECT_EQ(io.Get().complete_time, baseline)
          << "attached-but-idle plan must not perturb the simulation";
    }
  }
}

TEST(FaultInjectionTest, FlashReadErrorSurfacesAsDeviceError) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.device.SetFaultPlan(&plan);
  plan.ScheduleWindow(FaultKind::kFlashReadError, Micros(1), Millis(10));
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine, {});
  auto session = client.AttachSession(tenant->handle());

  auto io = session->Read(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
  EXPECT_EQ(io.Get().status, ReqStatus::kDeviceError);
  EXPECT_GE(h.device.stats().read_errors, 1);
  EXPECT_EQ(h.device.stats().reads_completed, 0)
      << "failed reads must not count as completions";
}

TEST(FaultInjectionTest, FlashWriteErrorSurfacesAsDeviceError) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.device.SetFaultPlan(&plan);
  plan.ScheduleWindow(FaultKind::kFlashWriteError, Micros(1), Millis(10));
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine, {});
  auto session = client.AttachSession(tenant->handle());

  auto io = session->Write(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
  EXPECT_EQ(io.Get().status, ReqStatus::kDeviceError);
  EXPECT_GE(h.device.stats().write_errors, 1);
}

TEST(FaultInjectionTest, BrownoutSlowsReadsWhileActive) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  plan.set_brownout_slowdown(16.0);
  h.device.SetFaultPlan(&plan);
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine, {});
  auto session = client.AttachSession(tenant->handle());

  auto before = session->Read(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return before.Ready(); }));
  ASSERT_TRUE(before.Get().ok());

  plan.ScheduleWindow(FaultKind::kFlashBrownout, Millis(5), Millis(20));
  h.RunUntilReady([&] { return h.sim.Now() >= Millis(6); });
  auto during = session->Read(800, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return during.Ready(); }));
  ASSERT_TRUE(during.Get().ok());
  EXPECT_GT(during.Get().Latency(), before.Get().Latency())
      << "browned-out device serves reads slower";

  h.RunUntilReady([&] { return h.sim.Now() >= Millis(30); });
  auto after = session->Read(1600, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return after.Ready(); }));
  ASSERT_TRUE(after.Get().ok());
  EXPECT_LT(after.Get().Latency(), during.Get().Latency())
      << "latency recovers once the brownout clears";
}

TEST(FaultInjectionTest, BrownoutShedsBestEffortTokenShare) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.server.SetFaultPlan(&plan);
  core::Tenant* be = h.BeTenant();
  h.LcTenant();
  const double nominal = be->token_rate();
  ASSERT_GT(nominal, 0.0);

  plan.ScheduleWindow(FaultKind::kFlashBrownout, Millis(1), Millis(10));
  h.RunUntilReady([&] { return h.sim.Now() >= Millis(2); });
  EXPECT_TRUE(h.server.control_plane().be_shed_active());
  EXPECT_NEAR(be->token_rate(),
              nominal * h.server.options().be_shed_factor,
              nominal * 0.01)
      << "BE share shed during the brownout";

  h.RunUntilReady([&] { return h.sim.Now() >= Millis(15); });
  EXPECT_FALSE(h.server.control_plane().be_shed_active());
  EXPECT_NEAR(be->token_rate(), nominal, nominal * 0.01)
      << "BE share restored after the brownout";
}

TEST(FaultInjectionTest, ServerForcedErrorsAreCountedPerTenant) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.server.SetFaultPlan(&plan);
  plan.ScheduleWindow(FaultKind::kServerDeviceError, Micros(1), Millis(50));
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine, {});
  auto session = client.AttachSession(tenant->handle());

  for (int i = 0; i < 4; ++i) {
    auto io = session->Read(i * 800, 8);
    ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
    EXPECT_EQ(io.Get().status, ReqStatus::kDeviceError);
  }
  EXPECT_EQ(tenant->errors, 4);
  EXPECT_EQ(h.server.AggregateStats().error_responses, 4);
  EXPECT_EQ(h.device.stats().reads_completed, 0)
      << "forced server errors never reach the device";

  // The snapshot publishes both the per-tenant counter and the
  // injected-fault totals.
  obs::MetricsRegistry& registry = h.server.SnapshotMetrics();
  EXPECT_EQ(registry
                .GetGauge("tenant_errors",
                          obs::Label("tenant",
                                     static_cast<int64_t>(tenant->handle())))
                ->value(),
            4.0);
  EXPECT_GE(registry
                .GetGauge("faults_injected",
                          obs::Label("kind", "server_device_error"))
                ->value(),
            4.0);
}

TEST(FaultInjectionTest, ClientRetriesReadThroughServerErrorWindow) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.server.SetFaultPlan(&plan);
  // Errors forced only for the first 500us; the client's retry lands
  // after the window closes and succeeds.
  plan.ScheduleWindow(FaultKind::kServerDeviceError, Micros(1),
                      Micros(500));
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine,
                              RetryingClientOptions());
  auto session = client.AttachSession(tenant->handle());

  auto io = session->Read(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
  EXPECT_TRUE(io.Get().ok()) << "read retried to success";
  EXPECT_GE(client.fault_stats().retries, 1);
  EXPECT_EQ(client.fault_stats().failures, 0);
}

TEST(FaultInjectionTest, WriteTimeoutSurfacesUnknownOutcome) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.net.SetFaultPlan(&plan);
  // Link down for a long time: the write can never be delivered.
  plan.ScheduleWindow(FaultKind::kNetLinkFlap, Micros(1), sim::Seconds(1));
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine,
                              RetryingClientOptions());
  auto session = client.AttachSession(tenant->handle());

  auto io = session->Write(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
  EXPECT_EQ(io.Get().status, ReqStatus::kUnknownOutcome)
      << "writes are not idempotent and must not be retransmitted; the "
         "library cannot know whether the write executed";
  EXPECT_EQ(client.fault_stats().timeouts, 1);
  EXPECT_EQ(client.fault_stats().retries, 0);
  EXPECT_EQ(client.fault_stats().failures, 1);
  EXPECT_GE(h.net.dropped_messages(), 1);
}

TEST(FaultInjectionTest, ConnectionResetTriggersReconnectAndRecovery) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.net.SetFaultPlan(&plan);
  // Reset any connection whose client machine sends in the first
  // 100us. The connection stays closed until the client library
  // notices (consecutive timeouts) and reconnects.
  plan.ScheduleWindow(FaultKind::kNetReset, Micros(1), Micros(100),
                      static_cast<uint64_t>(h.client_machine->id()));
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine,
                              RetryingClientOptions());
  auto session = client.AttachSession(tenant->handle());

  // Step into the window so the first transmission hits the reset.
  h.sim.RunUntil(Micros(2));
  auto io = session->Read(0, 8);
  ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
  EXPECT_TRUE(io.Get().ok()) << "read recovered after reconnect";
  EXPECT_EQ(h.net.connection_resets(), 1);
  EXPECT_EQ(client.fault_stats().reconnects, 1);
  EXPECT_GE(client.fault_stats().timeouts, 2);
}

TEST(FaultInjectionTest, ReadSurvivesPacketLoss) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.net.SetFaultPlan(&plan);
  // 30% of messages from either endpoint vanish; idempotent retries
  // still finish every read.
  plan.SetProbability(FaultKind::kNetDrop, 0.3);
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine,
                              RetryingClientOptions());
  auto session = client.AttachSession(tenant->handle());

  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    auto io = session->Read(i * 800, 8);
    ASSERT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
    if (io.Get().ok()) ++ok;
  }
  EXPECT_EQ(ok, 20) << "every read eventually succeeded";
  EXPECT_GE(client.fault_stats().retries, 1);
  EXPECT_GE(h.net.dropped_messages(), 1);
}

}  // namespace
}  // namespace reflex
