#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace reflex::core {
namespace {

using flash::FlashOp;
using sim::Millis;

TEST(RequestCostModelTest, ReadCostsOneTokenUnderMixedLoad) {
  RequestCostModel m(10.0, 0.5);
  EXPECT_DOUBLE_EQ(m.TokensFor(FlashOp::kRead, 4096, false), 1.0);
}

TEST(RequestCostModelTest, ReadOnlyDiscountApplies) {
  RequestCostModel m(10.0, 0.5);
  EXPECT_DOUBLE_EQ(m.TokensFor(FlashOp::kRead, 4096, true), 0.5);
}

TEST(RequestCostModelTest, WriteCostsWriteCostTokens) {
  RequestCostModel m(10.0, 0.5);
  EXPECT_DOUBLE_EQ(m.TokensFor(FlashOp::kWrite, 4096, false), 10.0);
  // Write cost does not depend on the read-only flag.
  EXPECT_DOUBLE_EQ(m.TokensFor(FlashOp::kWrite, 4096, true), 10.0);
}

TEST(RequestCostModelTest, CostConstantBelow4K) {
  // "Cost is constant for requests 4KB and smaller" (section 3.2.1).
  RequestCostModel m(10.0, 0.5);
  EXPECT_DOUBLE_EQ(m.TokensFor(FlashOp::kRead, 1024, false), 1.0);
  EXPECT_DOUBLE_EQ(m.TokensFor(FlashOp::kRead, 512, false), 1.0);
  EXPECT_DOUBLE_EQ(m.TokensFor(FlashOp::kRead, 4096, false), 1.0);
}

TEST(RequestCostModelTest, CostScalesLinearlyAbove4K) {
  // "a 32KB request costs as much as 8 back-to-back 4KB requests".
  RequestCostModel m(10.0, 0.5);
  EXPECT_DOUBLE_EQ(m.TokensFor(FlashOp::kRead, 32768, false), 8.0);
  EXPECT_DOUBLE_EQ(m.TokensFor(FlashOp::kWrite, 32768, false), 80.0);
  // ceil: 5KB costs 2 tokens.
  EXPECT_DOUBLE_EQ(m.TokensFor(FlashOp::kRead, 5120, false), 2.0);
}

TEST(RequestCostModelTest, PaperSloReservationExample) {
  // Paper: 100K IOPS at 80% reads, write cost 10 => 0.8*100K*1 +
  // 0.2*100K*10 = 280K tokens/s.
  RequestCostModel m(10.0, 0.5);
  SloSpec slo;
  slo.iops = 100000;
  slo.read_fraction = 0.8;
  slo.latency = Millis(1);
  EXPECT_NEAR(m.TokenRateForSlo(slo), 280000.0, 1e-6);
}

TEST(RequestCostModelTest, Scenario1TenantBReservation) {
  // Paper scenario 1: tenant B reserves 70K IOPS at 80% reads =>
  // 196K tokens/s.
  RequestCostModel m(10.0, 0.5);
  SloSpec slo;
  slo.iops = 70000;
  slo.read_fraction = 0.8;
  slo.latency = sim::Micros(500);
  EXPECT_NEAR(m.TokenRateForSlo(slo), 196000.0, 1e-6);
}

TEST(RequestCostModelTest, SloReservationScalesWithRequestSize) {
  RequestCostModel m(10.0, 0.5);
  SloSpec slo;
  slo.iops = 10000;
  slo.read_fraction = 1.0;
  slo.request_bytes = 32768;
  EXPECT_NEAR(m.TokenRateForSlo(slo), 80000.0, 1e-6);
}

TEST(ReadRatioTrackerTest, IdleDeviceIsReadOnly) {
  ReadRatioTracker tracker;
  EXPECT_TRUE(tracker.IsReadOnly(0));
  EXPECT_DOUBLE_EQ(tracker.ReadFraction(0), 1.0);
}

TEST(ReadRatioTrackerTest, TracksMix) {
  ReadRatioTracker tracker;
  for (int i = 0; i < 90; ++i) tracker.Observe(1000, true);
  for (int i = 0; i < 10; ++i) tracker.Observe(1000, false);
  EXPECT_NEAR(tracker.ReadFraction(1000), 0.9, 1e-9);
  EXPECT_FALSE(tracker.IsReadOnly(1000));
}

TEST(ReadRatioTrackerTest, WritesDecayBackToReadOnly) {
  ReadRatioTracker tracker(Millis(1));
  tracker.Observe(0, false);
  for (int i = 0; i < 1000; ++i) tracker.Observe(i * 1000, true);
  EXPECT_FALSE(tracker.IsReadOnly(Millis(1)));
  // After many half-lives of pure reads, the write evaporates.
  for (int i = 0; i < 100; ++i) {
    tracker.Observe(Millis(1) + i * Millis(1), true);
  }
  EXPECT_TRUE(tracker.IsReadOnly(Millis(120)));
}

TEST(ReadRatioTrackerTest, WeightedObservations) {
  ReadRatioTracker tracker;
  tracker.Observe(0, true, 1.0);
  tracker.Observe(0, false, 3.0);
  EXPECT_NEAR(tracker.ReadFraction(0), 0.25, 1e-9);
}

}  // namespace
}  // namespace reflex::core
