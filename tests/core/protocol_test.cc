#include "core/protocol.h"

#include <gtest/gtest.h>

namespace reflex::core {
namespace {

TEST(ProtocolTest, ReadRequestIsHeaderOnly) {
  RequestMsg msg;
  msg.type = ReqType::kRead;
  msg.sectors = 8;
  EXPECT_EQ(msg.WireBytes(kSectorBytes), kRequestHeaderBytes);
  // The paper: "the overhead of ReFlex requests is small (38 bytes per
  // 4KB request)" -- our 24B header plus TCP segment framing.
  EXPECT_LE(kRequestHeaderBytes, 38u);
}

TEST(ProtocolTest, WriteRequestCarriesPayload) {
  RequestMsg msg;
  msg.type = ReqType::kWrite;
  msg.sectors = 8;
  EXPECT_EQ(msg.WireBytes(kSectorBytes), kRequestHeaderBytes + 4096);
}

TEST(ProtocolTest, BarrierIsHeaderOnly) {
  RequestMsg msg;
  msg.type = ReqType::kBarrier;
  msg.sectors = 0;
  EXPECT_EQ(msg.WireBytes(kSectorBytes), kRequestHeaderBytes);
}

TEST(ProtocolTest, ControlMessagesAreFixedSize) {
  RequestMsg reg;
  reg.type = ReqType::kRegister;
  EXPECT_EQ(reg.WireBytes(kSectorBytes), kRegisterMsgBytes);
  RequestMsg unreg;
  unreg.type = ReqType::kUnregister;
  EXPECT_EQ(unreg.WireBytes(kSectorBytes), kRegisterMsgBytes);
}

TEST(ProtocolTest, ReadResponseCarriesDataOnlyOnSuccess) {
  ResponseMsg ok;
  ok.type = RespType::kResponse;
  ok.status = ReqStatus::kOk;
  ok.sectors = 8;
  EXPECT_EQ(ok.WireBytes(kSectorBytes), kResponseHeaderBytes + 4096);
  ResponseMsg err = ok;
  err.status = ReqStatus::kAccessDenied;
  EXPECT_EQ(err.WireBytes(kSectorBytes), kResponseHeaderBytes);
}

TEST(ProtocolTest, WriteAndBarrierResponsesAreHeaderOnly) {
  ResponseMsg written;
  written.type = RespType::kWritten;
  written.sectors = 8;  // sectors do not travel back
  EXPECT_EQ(written.WireBytes(kSectorBytes), kResponseHeaderBytes);
  ResponseMsg barrier;
  barrier.type = RespType::kBarrierDone;
  EXPECT_EQ(barrier.WireBytes(kSectorBytes), kResponseHeaderBytes);
}

}  // namespace
}  // namespace reflex::core
