// Property tests over Algorithm 1 (parameterized random-traffic
// sweeps): conservation, FIFO order, bounded deficits, pass-through
// completeness.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/cost_model.h"
#include "core/qos_scheduler.h"
#include "core/tenant.h"
#include "sim/random.h"
#include "sim/time.h"

namespace reflex::core {
namespace {

using sim::Micros;

// (num LC tenants, num BE tenants, seed)
using Shape = std::tuple<int, int, uint64_t>;

class SchedulerPropertyTest : public ::testing::TestWithParam<Shape> {
 protected:
  SchedulerPropertyTest()
      : cost_model_(10.0, 0.5), sched_(shared_, cost_model_) {
    shared_.read_ratio.Observe(0, false, 1000.0);  // mixed pricing
  }

  SchedulerShared shared_;
  RequestCostModel cost_model_;
  QosScheduler sched_;
};

TEST_P(SchedulerPropertyTest, InvariantsUnderRandomTraffic) {
  const auto [num_lc, num_be, seed] = GetParam();
  sim::Rng rng(seed, "sched_property");

  std::vector<std::unique_ptr<Tenant>> tenants;
  double total_rate = 0.0;
  for (int i = 0; i < num_lc + num_be; ++i) {
    const bool lc = i < num_lc;
    auto t = std::make_unique<Tenant>(
        i + 1,
        lc ? TenantClass::kLatencyCritical : TenantClass::kBestEffort,
        SloSpec{});
    const double rate = 1000.0 + rng.NextDouble() * 200000.0;
    t->set_token_rate(rate);
    total_rate += rate;
    sched_.AddTenant(t.get());
    tenants.push_back(std::move(t));
  }
  shared_.num_threads = 2;  // keep the bucket across rounds

  // Per-tenant FIFO bookkeeping: cookies must submit in enqueue order.
  std::vector<uint64_t> next_expected(tenants.size(), 0);
  std::vector<uint64_t> next_cookie(tenants.size(), 0);
  int64_t enqueued = 0;
  int64_t submitted = 0;

  auto submit = [&](Tenant& t, PendingIo&& io) {
    const size_t idx = t.handle() - 1;
    EXPECT_EQ(io.msg.cookie, next_expected[idx])
        << "per-tenant FIFO violated for tenant " << t.handle();
    ++next_expected[idx];
    ++submitted;
    // LC balances may go negative but never beyond NEG_LIMIT minus one
    // request's cost; BE balances never go negative at all.
    if (t.IsLatencyCritical()) {
      EXPECT_GT(t.tokens(), -50.0 - 80.0 - 1e-9);
    } else {
      EXPECT_GE(t.tokens(), -1e-9);
    }
  };

  sim::TimeNs now = 0;
  for (int round = 0; round < 400; ++round) {
    // Random arrivals.
    const int arrivals = static_cast<int>(rng.NextBounded(8));
    for (int a = 0; a < arrivals; ++a) {
      const size_t idx = rng.NextBounded(tenants.size());
      PendingIo io;
      io.msg.type =
          rng.NextBernoulli(0.8) ? ReqType::kRead : ReqType::kWrite;
      io.msg.sectors = rng.NextBernoulli(0.9) ? 8 : 64;  // 4KB or 32KB
      io.msg.cookie = next_cookie[idx]++;
      sched_.Enqueue(now, tenants[idx].get(), std::move(io));
      ++enqueued;
    }
    now += static_cast<sim::TimeNs>(rng.NextBounded(100) + 1) * 1000;
    sched_.RunRound(now, submit);
  }

  // Nothing is invented: submissions never exceed enqueues, and the
  // leftovers are still queued.
  EXPECT_LE(submitted, enqueued);
  int64_t still_queued = 0;
  for (auto& t : tenants) {
    still_queued += static_cast<int64_t>(t->queue_depth());
  }
  EXPECT_EQ(submitted + still_queued, enqueued);

  // Token conservation: tokens spent cannot exceed tokens generated
  // (rates x elapsed time) plus the LC burst allowance.
  const double generated =
      total_rate * sim::ToSeconds(now) + 50.0 * (num_lc + num_be);
  EXPECT_LE(shared_.tokens_spent_total, generated + 1.0);
}

TEST_P(SchedulerPropertyTest, PassThroughModeSubmitsEverything) {
  const auto [num_lc, num_be, seed] = GetParam();
  QosScheduler::Config config;
  config.enforce = false;
  QosScheduler sched(shared_, cost_model_, config);
  sim::Rng rng(seed ^ 0xbeef, "pass_through");

  std::vector<std::unique_ptr<Tenant>> tenants;
  for (int i = 0; i < num_lc + num_be; ++i) {
    auto t = std::make_unique<Tenant>(
        i + 1,
        i < num_lc ? TenantClass::kLatencyCritical
                   : TenantClass::kBestEffort,
        SloSpec{});
    sched.AddTenant(t.get());
    tenants.push_back(std::move(t));
  }
  int64_t enqueued = 0;
  int64_t submitted = 0;
  for (int i = 0; i < 500; ++i) {
    PendingIo io;
    io.msg.type = ReqType::kWrite;  // expensive: irrelevant when off
    io.msg.sectors = 8;
    sched.Enqueue(0, tenants[rng.NextBounded(tenants.size())].get(),
                  std::move(io));
    ++enqueued;
  }
  sched.RunRound(1000, [&](Tenant&, PendingIo&&) { ++submitted; });
  EXPECT_EQ(submitted, enqueued) << "disabled scheduler is pass-through";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SchedulerPropertyTest,
    ::testing::Values(Shape{1, 0, 1}, Shape{0, 1, 2}, Shape{1, 1, 3},
                      Shape{4, 4, 4}, Shape{16, 16, 5}, Shape{0, 32, 6},
                      Shape{32, 0, 7}, Shape{2, 14, 8}));

}  // namespace
}  // namespace reflex::core
