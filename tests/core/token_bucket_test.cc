#include "core/token_bucket.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace reflex::core {
namespace {

TEST(GlobalTokenBucketTest, StartsEmpty) {
  GlobalTokenBucket bucket;
  EXPECT_DOUBLE_EQ(bucket.Tokens(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.TryClaim(10.0), 0.0);
}

TEST(GlobalTokenBucketTest, DonateAndClaim) {
  GlobalTokenBucket bucket;
  bucket.Donate(100.0);
  EXPECT_NEAR(bucket.Tokens(), 100.0, 1e-6);
  EXPECT_NEAR(bucket.TryClaim(30.0), 30.0, 1e-6);
  EXPECT_NEAR(bucket.Tokens(), 70.0, 1e-6);
}

TEST(GlobalTokenBucketTest, ClaimMoreThanAvailableReturnsRemainder) {
  GlobalTokenBucket bucket;
  bucket.Donate(5.0);
  EXPECT_NEAR(bucket.TryClaim(50.0), 5.0, 1e-6);
  EXPECT_DOUBLE_EQ(bucket.Tokens(), 0.0);
}

TEST(GlobalTokenBucketTest, FractionalTokens) {
  GlobalTokenBucket bucket;
  // Scheduling rounds often produce fractions of a token.
  for (int i = 0; i < 1000; ++i) bucket.Donate(0.001);
  EXPECT_NEAR(bucket.Tokens(), 1.0, 1e-3);
}

TEST(GlobalTokenBucketTest, FractionalDonationsDoNotBleedTokens) {
  // Regression: 0.29 * 1e6 == 289999.99999999994. With truncation
  // instead of rounding in the micro-token conversion, every such
  // donation lost a micro-token -- about one whole token per million
  // fractional donations, a continuous leak in a scheduler that
  // donates sub-token amounts every round.
  GlobalTokenBucket bucket;
  constexpr int kDonations = 1000000;
  for (int i = 0; i < kDonations; ++i) bucket.Donate(0.29);
  // Truncation would land at ~289999.0 tokens; rounding is exact.
  EXPECT_NEAR(bucket.Tokens(), 0.29 * kDonations, 0.01);
}

TEST(GlobalTokenBucketTest, ClaimRoundTripConservesFractions) {
  GlobalTokenBucket bucket;
  bucket.Donate(0.29);
  const double got = bucket.TryClaim(0.29);
  EXPECT_NEAR(got, 0.29, 1e-6);
  EXPECT_DOUBLE_EQ(bucket.Tokens(), 0.0);
}

TEST(GlobalTokenBucketTest, NegativeAndZeroInputsIgnored) {
  GlobalTokenBucket bucket;
  bucket.Donate(-5.0);
  bucket.Donate(0.0);
  EXPECT_DOUBLE_EQ(bucket.Tokens(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.TryClaim(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(bucket.TryClaim(0.0), 0.0);
}

TEST(GlobalTokenBucketTest, ResetEmpties) {
  GlobalTokenBucket bucket;
  bucket.Donate(42.0);
  bucket.Reset();
  EXPECT_DOUBLE_EQ(bucket.Tokens(), 0.0);
}

TEST(GlobalTokenBucketTest, ConcurrentClaimsNeverOverdraw) {
  // The bucket is the one genuinely shared structure between dataplane
  // threads; verify it under real concurrency.
  GlobalTokenBucket bucket;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  bucket.Donate(kThreads * kOpsPerThread * 0.5);

  std::atomic<double> claimed_total{0.0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bucket, &claimed_total] {
      double local = 0.0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        local += bucket.TryClaim(1.0);
      }
      double expected = claimed_total.load();
      while (!claimed_total.compare_exchange_weak(expected,
                                                  expected + local)) {
      }
    });
  }
  for (auto& th : threads) th.join();

  const double total = kThreads * kOpsPerThread * 0.5;
  // No tokens invented: claimed + remaining == donated.
  EXPECT_NEAR(claimed_total.load() + bucket.Tokens(), total, 1e-3);
  EXPECT_GE(bucket.Tokens(), 0.0);
}

TEST(GlobalTokenBucketTest, ConcurrentDonateAndClaimConserves) {
  GlobalTokenBucket bucket;
  constexpr int kThreads = 4;
  constexpr int kOps = 50000;
  std::atomic<double> claimed_total{0.0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bucket, &claimed_total, t] {
      double local = 0.0;
      for (int i = 0; i < kOps; ++i) {
        if ((i + t) % 2 == 0) {
          bucket.Donate(2.0);
        } else {
          local += bucket.TryClaim(1.5);
        }
      }
      double expected = claimed_total.load();
      while (!claimed_total.compare_exchange_weak(expected,
                                                  expected + local)) {
      }
    });
  }
  for (auto& th : threads) th.join();
  const double donated = kThreads * (kOps / 2) * 2.0;
  EXPECT_NEAR(claimed_total.load() + bucket.Tokens(), donated, 1e-2);
}

}  // namespace
}  // namespace reflex::core
