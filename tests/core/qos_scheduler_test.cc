#include "core/qos_scheduler.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/cost_model.h"
#include "core/tenant.h"
#include "sim/time.h"

namespace reflex::core {
namespace {

using sim::Micros;
using sim::Millis;
using sim::TimeNs;

class QosSchedulerTest : public ::testing::Test {
 protected:
  QosSchedulerTest() : cost_model_(10.0, 0.5), sched_(shared_, cost_model_) {
    // Force mixed-load pricing (reads cost 1 token) unless a test
    // wants the read-only discount.
    shared_.read_ratio.Observe(0, /*is_read=*/false, 1000.0);
  }

  PendingIo MakeIo(ReqType type, uint32_t sectors = 8) {
    PendingIo io;
    io.msg.type = type;
    io.msg.sectors = sectors;
    return io;
  }

  void EnqueueN(Tenant* t, int n, ReqType type, TimeNs now = 0) {
    for (int i = 0; i < n; ++i) sched_.Enqueue(now, t, MakeIo(type));
  }

  int Submitted() const { return static_cast<int>(submitted_.size()); }

  QosScheduler::SubmitFn Collect() {
    return [this](Tenant& t, PendingIo&& io) {
      submitted_.emplace_back(t.handle(), io.cost);
    };
  }

  SchedulerShared shared_;
  RequestCostModel cost_model_;
  QosScheduler sched_;
  std::vector<std::pair<uint32_t, double>> submitted_;
};

TEST_F(QosSchedulerTest, EnqueuePricesRequests) {
  Tenant t(1, TenantClass::kLatencyCritical, SloSpec{});
  sched_.AddTenant(&t);
  sched_.Enqueue(0, &t, MakeIo(ReqType::kRead, 8));      // 4KB read
  sched_.Enqueue(0, &t, MakeIo(ReqType::kWrite, 8));     // 4KB write
  sched_.Enqueue(0, &t, MakeIo(ReqType::kRead, 64));     // 32KB read
  EXPECT_DOUBLE_EQ(t.queued_cost(), 1.0 + 10.0 + 8.0);
  EXPECT_EQ(t.queue_depth(), 3u);
}

TEST_F(QosSchedulerTest, ReadOnlyDiscountAppliedWhenDeviceIsReadOnly) {
  SchedulerShared fresh;  // never saw a write: read-only
  QosScheduler sched(fresh, cost_model_);
  Tenant t(1, TenantClass::kLatencyCritical, SloSpec{});
  sched.AddTenant(&t);
  sched.Enqueue(0, &t, MakeIo(ReqType::kRead, 8));
  EXPECT_DOUBLE_EQ(t.queued_cost(), 0.5);
}

TEST_F(QosSchedulerTest, LcBurstsUpToNegLimit) {
  Tenant t(1, TenantClass::kLatencyCritical, SloSpec{});
  t.set_token_rate(1000.0);
  sched_.AddTenant(&t);
  EnqueueN(&t, 100, ReqType::kRead);
  sched_.RunRound(0, Collect());
  // With zero accumulated tokens, the tenant may burst until its
  // balance crosses NEG_LIMIT = -50: exactly 50 one-token reads.
  EXPECT_EQ(Submitted(), 50);
  EXPECT_LE(t.tokens(), -50.0 + 1e-9);
}

TEST_F(QosSchedulerTest, LcRateLimitedAfterBurst) {
  Tenant t(1, TenantClass::kLatencyCritical, SloSpec{});
  t.set_token_rate(100000.0);  // 100K tokens/s
  sched_.AddTenant(&t);
  EnqueueN(&t, 2000, ReqType::kRead);
  sched_.RunRound(0, Collect());
  const int burst = Submitted();
  // 10ms at 100K tokens/s generates 1000 tokens.
  sched_.RunRound(Millis(10), Collect());
  EXPECT_NEAR(Submitted() - burst, 1000, 1);
}

TEST_F(QosSchedulerTest, NegLimitNotifiesControlPlane) {
  Tenant t(1, TenantClass::kLatencyCritical, SloSpec{});
  t.set_token_rate(1.0);
  sched_.AddTenant(&t);
  int notifications = 0;
  sched_.set_neg_limit_callback([&](Tenant&) { ++notifications; });
  // 12KB reads cost 3 tokens, so the burst overshoots NEG_LIMIT
  // (stops at -51) and the next round observes the deficit.
  for (int i = 0; i < 60; ++i) {
    sched_.Enqueue(0, &t, MakeIo(ReqType::kRead, 24));
  }
  sched_.RunRound(0, Collect());
  EXPECT_EQ(notifications, 0) << "not notified before crossing the limit";
  EXPECT_LT(t.tokens(), -50.0);
  sched_.RunRound(Millis(1), Collect());
  EXPECT_EQ(notifications, 1);
  EXPECT_EQ(t.neg_limit_hits, 1);
}

TEST_F(QosSchedulerTest, LcSurplusSpillsToGlobalBucket) {
  Tenant t(1, TenantClass::kLatencyCritical, SloSpec{});
  t.set_token_rate(100000.0);
  sched_.AddTenant(&t);
  // Two participating threads so the end-of-round bucket reset (which
  // fires once every thread completes a round) does not hide the
  // donation from this single scheduler.
  shared_.num_threads = 2;
  // No demand: tokens accumulate. POS_LIMIT is the sum of the last 3
  // grants, so after several idle rounds the surplus must spill (90%).
  sched_.RunRound(0, Collect());
  sched_.RunRound(Millis(10), Collect());   // +1000 tokens
  sched_.RunRound(Millis(20), Collect());   // +1000 tokens
  sched_.RunRound(Millis(30), Collect());   // +1000, > POS_LIMIT? no
  sched_.RunRound(Millis(70), Collect());   // +4000 > 3 rounds' grants
  EXPECT_GT(shared_.global_bucket.Tokens(), 0.0);
  // The tenant keeps only 10% of the excess above POS_LIMIT behavior:
  // in all cases its balance stays bounded near POS_LIMIT.
  EXPECT_LT(t.tokens(), 7000.0);
}

TEST_F(QosSchedulerTest, LcDonatesOnlyExcessAbovePosLimit) {
  // Pins Alg. 1 lines 13-15: the donation is donate_fraction of the
  // *excess above POS_LIMIT*, not of the whole balance. Donating a
  // fraction of the whole balance would pull the tenant below
  // POS_LIMIT and erode the burst headroom POS_LIMIT protects.
  Tenant t(1, TenantClass::kLatencyCritical, SloSpec{});
  t.set_token_rate(100000.0);
  sched_.AddTenant(&t);
  shared_.num_threads = 2;  // defer the end-of-round bucket reset
  sched_.RunRound(0, Collect());           // gen 0
  sched_.RunRound(Millis(10), Collect());  // gen 1000, tokens 1000
  sched_.RunRound(Millis(20), Collect());  // gen 1000, tokens 2000
  sched_.RunRound(Millis(60), Collect());  // gen 4000, tokens 6000
  // POS_LIMIT = last 3 grants = 1000 + 1000 + 4000 = 6000; tokens are
  // exactly at the limit, so nothing spills yet.
  EXPECT_DOUBLE_EQ(shared_.global_bucket.Tokens(), 0.0);
  EXPECT_NEAR(t.tokens(), 6000.0, 1e-6);
  sched_.RunRound(Millis(70), Collect());  // gen 1000, tokens 7000
  // POS_LIMIT = 1000 + 4000 + 1000 = 6000; excess = 1000. With
  // donate_fraction = 0.9 the bucket gets 900 and the tenant keeps
  // 6100 -- still >= POS_LIMIT. (The old whole-balance behavior would
  // donate 6300 and strand the tenant at 700, far below POS_LIMIT.)
  EXPECT_NEAR(shared_.global_bucket.Tokens(), 900.0, 1e-6);
  EXPECT_NEAR(t.tokens(), 6100.0, 1e-6);
  EXPECT_GE(t.tokens(), 6000.0);
}

TEST_F(QosSchedulerTest, BeRequiresTokensBeforeSubmitting) {
  Tenant t(2, TenantClass::kBestEffort, SloSpec{});
  t.set_token_rate(1000.0);
  sched_.AddTenant(&t);
  EnqueueN(&t, 10, ReqType::kRead);
  // First round: dt = 0 => no tokens => nothing may submit (BE tenants
  // cannot go negative).
  sched_.RunRound(0, Collect());
  EXPECT_EQ(Submitted(), 0);
  // After 5ms at 1000 tokens/s: 5 tokens => 5 reads.
  sched_.RunRound(Millis(5), Collect());
  EXPECT_EQ(Submitted(), 5);
}

TEST_F(QosSchedulerTest, BeClaimsFromGlobalBucket) {
  Tenant t(2, TenantClass::kBestEffort, SloSpec{});
  t.set_token_rate(0.0);  // no share of its own
  sched_.AddTenant(&t);
  EnqueueN(&t, 10, ReqType::kRead);
  shared_.global_bucket.Donate(6.0);
  sched_.RunRound(0, Collect());
  EXPECT_EQ(Submitted(), 6);
  EXPECT_NEAR(shared_.global_bucket.Tokens(), 0.0, 1e-6);
}

TEST_F(QosSchedulerTest, IdleBeDonatesInsteadOfHoarding) {
  Tenant t(2, TenantClass::kBestEffort, SloSpec{});
  t.set_token_rate(1000.0);
  sched_.AddTenant(&t);
  shared_.num_threads = 2;  // defer the end-of-round bucket reset
  // Tenant has no demand; its generated tokens must flow to the global
  // bucket, not accumulate privately (DRR).
  sched_.RunRound(0, Collect());
  sched_.RunRound(Millis(10), Collect());
  EXPECT_DOUBLE_EQ(t.tokens(), 0.0);
  EXPECT_NEAR(shared_.global_bucket.Tokens(), 10.0, 1e-6);
}

TEST_F(QosSchedulerTest, BeRoundRobinSharesBucketFairly) {
  Tenant a(1, TenantClass::kBestEffort, SloSpec{});
  Tenant b(2, TenantClass::kBestEffort, SloSpec{});
  sched_.AddTenant(&a);
  sched_.AddTenant(&b);
  EnqueueN(&a, 100, ReqType::kRead);
  EnqueueN(&b, 100, ReqType::kRead);
  // Across many rounds, each round donates 1 token to the bucket and
  // rotates the service order; both tenants should get ~half.
  int a_count = 0, b_count = 0;
  for (int round = 1; round <= 100; ++round) {
    shared_.global_bucket.Donate(1.0);
    submitted_.clear();
    sched_.RunRound(round * Micros(10), Collect());
    for (auto& [handle, cost] : submitted_) {
      (handle == 1 ? a_count : b_count) += 1;
    }
  }
  EXPECT_NEAR(a_count, b_count, 2);
  EXPECT_EQ(a_count + b_count, 100);
}

TEST_F(QosSchedulerTest, LcServedBeforeBe) {
  Tenant lc(1, TenantClass::kLatencyCritical, SloSpec{});
  Tenant be(2, TenantClass::kBestEffort, SloSpec{});
  lc.set_token_rate(10000.0);
  be.set_token_rate(10000.0);
  sched_.AddTenant(&lc);
  sched_.AddTenant(&be);
  EnqueueN(&lc, 5, ReqType::kRead);
  EnqueueN(&be, 5, ReqType::kRead);
  sched_.RunRound(0, Collect());
  sched_.RunRound(Millis(1), Collect());
  ASSERT_GE(Submitted(), 6);
  // All LC submissions precede BE submissions within a round.
  EXPECT_EQ(submitted_[0].first, 1u);
}

TEST_F(QosSchedulerTest, GlobalBucketResetAfterAllThreadsScheduled) {
  shared_.num_threads = 2;
  QosScheduler other(shared_, cost_model_);
  shared_.global_bucket.Donate(100.0);
  sched_.RunRound(0, Collect());
  EXPECT_NEAR(shared_.global_bucket.Tokens(), 100.0, 1e-6)
      << "bucket persists until every thread completed a round";
  other.RunRound(0, Collect());
  EXPECT_DOUBLE_EQ(shared_.global_bucket.Tokens(), 0.0)
      << "last thread resets the bucket";
  // The next epoch repeats the pattern.
  shared_.global_bucket.Donate(50.0);
  sched_.RunRound(Millis(1), Collect());
  EXPECT_NEAR(shared_.global_bucket.Tokens(), 50.0, 1e-6);
  other.RunRound(Millis(1), Collect());
  EXPECT_DOUBLE_EQ(shared_.global_bucket.Tokens(), 0.0);
}

TEST(SchedulerSharedStressTest, EpochResetSafeUnderRealThreads) {
  // The epoch-reset protocol (Alg. 1 lines 22-23) is the one piece of
  // scheduler state shared across OS threads in a real deployment:
  // exercise MarkRoundComplete + Donate + the bucket reset with
  // genuine std::threads and check the coordination invariants hold.
  // (Runs under -fsanitize=address,undefined in CI.)
  SchedulerShared shared;
  constexpr int kThreads = 4;
  constexpr int kRounds = 20000;
  shared.num_threads = kThreads;
  RequestCostModel cost_model(10.0, 0.5);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, &cost_model, t] {
      // One scheduler per OS thread, as in the dataplane; no tenants,
      // so rounds only run the shared coordination path.
      QosScheduler sched(shared, cost_model);
      auto noop = [](Tenant&, PendingIo&&) {};
      for (int i = 0; i < kRounds; ++i) {
        if ((i + t) % 4 == 0) shared.global_bucket.Donate(0.25);
        sched.RunRound(i * sim::Micros(10), noop);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every epoch consumed exactly kThreads marks; the epoch counter
  // advanced (threads kept completing full sets) and the in-progress
  // epoch never over-counted.
  EXPECT_GE(shared.reset_epoch.load(), 1u);
  EXPECT_LE(shared.reset_epoch.load(),
            static_cast<uint64_t>(kRounds));
  const int marked = shared.threads_marked.load();
  EXPECT_GE(marked, 0);
  EXPECT_LT(marked, kThreads);
  EXPECT_GE(shared.global_bucket.Tokens(), 0.0);
}

TEST_F(QosSchedulerTest, TokensSpentTracked) {
  Tenant t(1, TenantClass::kLatencyCritical, SloSpec{});
  t.set_token_rate(1000.0);
  sched_.AddTenant(&t);
  EnqueueN(&t, 3, ReqType::kWrite);  // 10 tokens each
  sched_.RunRound(0, Collect());
  EXPECT_NEAR(shared_.tokens_spent_total, 30.0, 1e-9);
  EXPECT_NEAR(t.tokens_spent, 30.0, 1e-9);
  EXPECT_EQ(t.submitted_writes, 3);
}

TEST_F(QosSchedulerTest, RemoveTenantStopsService) {
  Tenant t(1, TenantClass::kBestEffort, SloSpec{});
  t.set_token_rate(1e6);
  sched_.AddTenant(&t);
  EXPECT_EQ(sched_.NumBeTenants(), 1);
  sched_.RemoveTenant(&t);
  EXPECT_EQ(sched_.NumBeTenants(), 0);
  EnqueueN(&t, 5, ReqType::kRead);
  sched_.RunRound(Millis(1), Collect());
  EXPECT_EQ(Submitted(), 0);
}

TEST_F(QosSchedulerTest, BeRotationUnaffectedByRemoval) {
  Tenant a(1, TenantClass::kBestEffort, SloSpec{});
  Tenant b(2, TenantClass::kBestEffort, SloSpec{});
  Tenant c(3, TenantClass::kBestEffort, SloSpec{});
  sched_.AddTenant(&a);
  sched_.AddTenant(&b);
  sched_.AddTenant(&c);
  EnqueueN(&a, 5, ReqType::kRead);
  EnqueueN(&b, 5, ReqType::kRead);
  EnqueueN(&c, 5, ReqType::kRead);

  // One token per round => exactly the tenant at the cursor submits.
  shared_.global_bucket.Donate(1.0);
  sched_.RunRound(Micros(10), Collect());
  ASSERT_EQ(Submitted(), 1);
  EXPECT_EQ(submitted_[0].first, 1u) << "a served first; cursor now at b";

  // Removing the already-served tenant shifts b and c down one slot;
  // the cursor must follow so b is still next in rotation.
  sched_.RemoveTenant(&a);
  submitted_.clear();
  shared_.global_bucket.Donate(1.0);
  sched_.RunRound(Micros(20), Collect());
  ASSERT_EQ(Submitted(), 1);
  EXPECT_EQ(submitted_[0].first, 2u)
      << "removal below the cursor skipped b's turn";
}

TEST_F(QosSchedulerTest, HasPendingDemand) {
  Tenant t(1, TenantClass::kBestEffort, SloSpec{});
  sched_.AddTenant(&t);
  EXPECT_FALSE(sched_.HasPendingDemand());
  EnqueueN(&t, 1, ReqType::kRead);
  EXPECT_TRUE(sched_.HasPendingDemand());
}

// Regression: with enforcement off, SubmitFront used to book spends
// against tenants that never received a grant, driving the balance
// unboundedly negative; RemoveTenant then "retired" that negative
// balance, corrupting the conservation ledger. Pass-through must be
// self-consistent: each submit generates a matching grant, so the
// balance stays at zero and nothing is retired.
TEST_F(QosSchedulerTest, PassThroughLedgerClosesAfterRetire) {
  QosScheduler::Config config;
  config.enforce = false;
  QosScheduler sched(shared_, cost_model_, config);
  Tenant t(1, TenantClass::kLatencyCritical, SloSpec{});
  sched.AddTenant(&t);
  for (int i = 0; i < 20; ++i) {
    sched.Enqueue(0, &t, MakeIo(ReqType::kRead));
    sched.Enqueue(0, &t, MakeIo(ReqType::kWrite));
  }
  sched.RunRound(Micros(10), Collect());
  EXPECT_EQ(Submitted(), 40) << "pass-through submits everything";
  EXPECT_GT(shared_.tokens_spent_total, 0.0);
  EXPECT_DOUBLE_EQ(t.tokens(), 0.0)
      << "each pass-through spend must be matched by a grant";
  EXPECT_DOUBLE_EQ(shared_.tokens_generated_total,
                   shared_.tokens_spent_total);

  sched.RemoveTenant(&t);
  EXPECT_DOUBLE_EQ(shared_.tokens_retired_total, 0.0)
      << "a pass-through tenant retires with a closed balance";
  // Full conservation equation with no active tenants.
  EXPECT_NEAR(shared_.tokens_generated_total,
              shared_.tokens_spent_total + shared_.tokens_discarded_total +
                  shared_.tokens_retired_total +
                  shared_.global_bucket.Tokens(),
              1e-9);
}

}  // namespace
}  // namespace reflex::core
