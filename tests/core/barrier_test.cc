// Tests for the ordering-barrier extension (paper section 4.1: "we
// will support barrier operations that can be used to force ordering
// and build high-level abstractions like atomic transactions").
//
// Semantics: a tenant's barrier completes only after every I/O of that
// tenant issued before it has completed; I/Os issued after the barrier
// are not submitted to the device until then.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "client/reflex_client.h"
#include "testing/harness.h"

namespace reflex {
namespace {

using client::IoResult;
using client::ReflexClient;
using sim::Micros;
using testing::Harness;

class BarrierTest : public ::testing::Test {
 protected:
  BarrierTest()
      : tenant_(harness_.LcTenant(100000, 0.9)),
        client_(harness_.sim, harness_.server, harness_.client_machine,
                ReflexClient::Options{}),
        session_(client_.AttachSession(tenant_->handle())) {}

  Harness harness_;
  core::Tenant* tenant_;
  ReflexClient client_;
  std::unique_ptr<client::TenantSession> session_;
};

TEST_F(BarrierTest, BarrierWithNothingInFlightCompletesQuickly) {
  auto b = session_->Barrier();
  ASSERT_TRUE(harness_.RunUntilReady([&] { return b.Ready(); }));
  EXPECT_TRUE(b.Get().ok());
  // Just network + dataplane round trip; nothing to wait for.
  EXPECT_LT(b.Get().Latency(), Micros(40));
}

TEST_F(BarrierTest, BarrierWaitsForPrecedingReads) {
  // Launch a burst of reads (each ~100us), then a barrier right away.
  std::vector<sim::Future<IoResult>> reads;
  for (int i = 0; i < 16; ++i) {
    reads.push_back(session_->Read(8ULL * 1000 * i, 8));
  }
  auto barrier = session_->Barrier();
  ASSERT_TRUE(harness_.RunUntilReady([&] { return barrier.Ready(); }));
  EXPECT_TRUE(barrier.Get().ok());
  // Every read resolved, and none completed after the barrier did
  // (server-side completion precedes barrier release; client-side
  // delivery adds at most the response path, identical for both).
  for (auto& r : reads) {
    ASSERT_TRUE(r.Ready());
    EXPECT_LE(r.Get().complete_time, barrier.Get().complete_time);
  }
  // The barrier had to outwait a ~100us read round trip.
  EXPECT_GT(barrier.Get().Latency(), Micros(80));
}

TEST_F(BarrierTest, IoAfterBarrierIsHeldBack) {
  // One slow read, a barrier, then another read issued immediately.
  auto first = session_->Read(0, 8);
  auto barrier = session_->Barrier();
  auto second = session_->Read(8000, 8);
  ASSERT_TRUE(harness_.RunUntilReady([&] { return second.Ready(); }));
  ASSERT_TRUE(first.Ready() && barrier.Ready());
  // Ordering: first completes, then the barrier, then the second read
  // (which could not even be submitted until the barrier released).
  EXPECT_LE(first.Get().complete_time, barrier.Get().complete_time);
  EXPECT_LT(barrier.Get().complete_time, second.Get().complete_time);
  // The second read paid the barrier wait: roughly two read round
  // trips end to end from its issue time.
  EXPECT_GT(second.Get().Latency(), Micros(150));
}

TEST_F(BarrierTest, BarriersDoNotBlockOtherTenants) {
  core::Tenant* other = harness_.LcTenant(50000, 1.0);
  ReflexClient::Options copts;
  copts.seed = 9;
  ReflexClient other_client(harness_.sim, harness_.server,
                            harness_.client_machine, copts);
  auto other_session = other_client.AttachSession(other->handle());

  // Tenant 1 sets up a long barrier chain.
  auto r1 = session_->Read(0, 8);
  auto b1 = session_->Barrier();
  auto r2 = session_->Read(8000, 8);

  // The other tenant's read proceeds immediately regardless.
  auto independent = other_session->Read(16000, 8);
  ASSERT_TRUE(harness_.RunUntilReady([&] { return independent.Ready(); }));
  EXPECT_LT(independent.Get().Latency(), Micros(130));
  ASSERT_TRUE(harness_.RunUntilReady([&] { return r2.Ready(); }));
  EXPECT_LT(independent.Get().complete_time, r2.Get().complete_time);
  (void)r1;
  (void)b1;
}

TEST_F(BarrierTest, ChainedBarriersPreserveTotalOrder) {
  std::vector<sim::Future<IoResult>> results;
  for (int i = 0; i < 5; ++i) {
    results.push_back(session_->Read(8ULL * 977 * i, 8));
    results.push_back(session_->Barrier());
  }
  ASSERT_TRUE(
      harness_.RunUntilReady([&] { return results.back().Ready(); }));
  sim::TimeNs prev = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].Ready()) << i;
    EXPECT_TRUE(results[i].Get().ok());
    EXPECT_GE(results[i].Get().complete_time, prev) << i;
    prev = results[i].Get().complete_time;
  }
}

TEST_F(BarrierTest, BarrierCostsNoTokens) {
  const double spent_before = tenant_->tokens_spent;
  auto b = session_->Barrier();
  ASSERT_TRUE(harness_.RunUntilReady([&] { return b.Ready(); }));
  EXPECT_DOUBLE_EQ(tenant_->tokens_spent, spent_before)
      << "barriers consume ordering, not device bandwidth";
}

}  // namespace
}  // namespace reflex
