// Unit tests for the detlint multi-analyzer linter (determinism +
// coroutine rule families): lexer behavior, function/coroutine
// context recovery, rule positives/negatives, suppression parsing and
// targeting, allowlist handling, analyzer selection, and driver exit
// codes / report formats. Fixture files live in FIXTURE_DIR (set by
// CMake); each canary_*.cc plants exactly one rule's violations,
// clean.cc and coro_clean.cc must stay silent.

#include "detlint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace detlint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

FileReport LintFixture(const std::string& name,
                       const std::vector<AllowEntry>& allowlist = {}) {
  return LintSource(name, ReadFixture(name), allowlist);
}

std::vector<std::string> Rules(const FileReport& r) {
  std::vector<std::string> out;
  for (const Finding& f : r.findings) out.push_back(f.rule);
  return out;
}

bool HasRule(const FileReport& r, const std::string& rule) {
  const auto rules = Rules(r);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

bool OnlyRule(const FileReport& r, const std::string& rule) {
  if (r.findings.empty()) return false;
  for (const Finding& f : r.findings) {
    if (f.rule != rule) return false;
  }
  return true;
}

// ---------------------------------------------------------------- lexer

TEST(DetlintLexer, TokenizesIdentifiersNumbersPunct) {
  const LexResult lex = Lex("int x = 42 + 0x1F;");
  ASSERT_EQ(lex.tokens.size(), 7u);
  EXPECT_EQ(lex.tokens[0].text, "int");
  EXPECT_EQ(lex.tokens[1].text, "x");
  EXPECT_EQ(lex.tokens[3].kind, Token::Kind::kNumber);
  EXPECT_EQ(lex.tokens[5].text, "0x1F");
}

TEST(DetlintLexer, FusesScopeAndArrow) {
  const LexResult lex = Lex("std::map m; p->begin();");
  std::vector<std::string> texts;
  for (const Token& t : lex.tokens) texts.push_back(t.text);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "::"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "->"), texts.end());
}

TEST(DetlintLexer, SkipsPreprocessorLines) {
  const LexResult lex = Lex(
      "#include <unordered_map>\n"
      "#define FOO \\\n  unordered_set\n"
      "int x;\n");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "unordered_map");
    EXPECT_NE(t.text, "unordered_set");
  }
  ASSERT_GE(lex.tokens.size(), 1u);
  EXPECT_EQ(lex.tokens[0].text, "int");
  EXPECT_EQ(lex.tokens[0].line, 4);
}

TEST(DetlintLexer, CapturesCommentsWithLines) {
  const LexResult lex = Lex("int a;\n// hello\n/* multi\nline */ int b;\n");
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_EQ(lex.comments[0].text, " hello");
  EXPECT_EQ(lex.comments[0].line, 2);
  EXPECT_EQ(lex.comments[1].line, 3);
}

TEST(DetlintLexer, StringContentsProduceNoIdentifiers) {
  const LexResult lex =
      Lex("const char* s = \"rand() time( unordered_map\";\n"
          "auto r = R\"(mt19937 system_clock)\";");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "mt19937");
    EXPECT_NE(t.text, "unordered_map");
    EXPECT_NE(t.text, "system_clock");
  }
}

TEST(DetlintLexer, DigitSeparatorsStayOneNumber) {
  const LexResult lex = Lex("long n = 1'000'000;");
  ASSERT_EQ(lex.tokens.size(), 5u);
  EXPECT_EQ(lex.tokens[3].text, "1'000'000");
}

// ---------------------------------------------------------------- rules

TEST(DetlintRules, WallClockPositives) {
  const FileReport r = LintSource(
      "t.cc",
      "void f() {\n"
      "  auto a = std::chrono::system_clock::now();\n"
      "  auto b = std::chrono::steady_clock::now();\n"
      "  long c = time(nullptr);\n"
      "  struct timespec ts; clock_gettime(0, &ts);\n"
      "}\n",
      {});
  ASSERT_EQ(r.findings.size(), 4u);
  EXPECT_TRUE(OnlyRule(r, "wall-clock"));
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(DetlintRules, WallClockNegatives) {
  // Member functions named time() and other-namespace clocks are fine.
  const FileReport r = LintSource(
      "t.cc",
      "struct S { int time() { return 1; } };\n"
      "int f(S& s) { return s.time() + mylib::time(0); }\n"
      "void g(sim::Simulator& sim) { auto now = sim.Now(); (void)now; }\n",
      {});
  EXPECT_TRUE(r.findings.empty());
}

TEST(DetlintRules, AmbientRngPositives) {
  const FileReport r = LintSource(
      "t.cc",
      "int f() {\n"
      "  std::random_device rd;\n"
      "  std::mt19937 gen(rd());\n"
      "  srand(7);\n"
      "  return rand();\n"
      "}\n",
      {});
  ASSERT_EQ(r.findings.size(), 4u);
  EXPECT_TRUE(OnlyRule(r, "ambient-rng"));
}

TEST(DetlintRules, AmbientRngNegatives) {
  // sim::Rng and members named rand are the sanctioned paths.
  const FileReport r = LintSource(
      "t.cc",
      "int f(sim::Rng& rng) { return rng.NextInt(10); }\n"
      "int g(Gen& gen) { return gen.rand(); }\n"
      "int h() { return mylib::random(3); }\n",
      {});
  EXPECT_TRUE(r.findings.empty());
}

TEST(DetlintRules, UnorderedContainerFlagsDeclaration) {
  const FileReport r =
      LintSource("t.cc", "std::unordered_map<int, int> m;\n", {});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "unordered-container");
  EXPECT_EQ(r.findings[0].line, 1);
}

TEST(DetlintRules, UnorderedIterFlagsRangeForAndBegin) {
  const FileReport r = LintSource(
      "t.cc",
      "std::unordered_map<int, int> m;\n"
      "int f() {\n"
      "  int s = 0;\n"
      "  for (const auto& kv : m) s += kv.second;\n"
      "  for (auto it = m.begin(); it != m.end(); ++it) s += it->second;\n"
      "  return s;\n"
      "}\n",
      {});
  int iter = 0;
  for (const Finding& f : r.findings) {
    if (f.rule == "unordered-iter") ++iter;
  }
  EXPECT_EQ(iter, 2);
  EXPECT_TRUE(HasRule(r, "unordered-container"));
}

TEST(DetlintRules, UnorderedIterTracksAliases) {
  const FileReport r = LintSource(
      "t.cc",
      "using PageMap = std::unordered_map<int, int>;\n"
      "PageMap pages_;\n"
      "int f() {\n"
      "  int s = 0;\n"
      "  for (auto& kv : pages_) s += kv.second;\n"
      "  return s;\n"
      "}\n",
      {});
  EXPECT_TRUE(HasRule(r, "unordered-iter"));
}

TEST(DetlintRules, OrderedIterationIsClean) {
  const FileReport r = LintSource(
      "t.cc",
      "std::map<int, int> m;\n"
      "int f() {\n"
      "  int s = 0;\n"
      "  for (const auto& kv : m) s += kv.second;\n"
      "  return s;\n"
      "}\n",
      {});
  EXPECT_TRUE(r.findings.empty());
}

TEST(DetlintRules, PointerKeyPositives) {
  const FileReport r = LintSource(
      "t.cc",
      "std::map<Conn*, int> a;\n"
      "std::set<const Conn*> b;\n"
      "std::less<Conn*> c;\n",
      {});
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_TRUE(OnlyRule(r, "pointer-key"));
}

TEST(DetlintRules, PointerValueIsClean) {
  // Pointer VALUES are fine; only pointer KEYS are banned.
  const FileReport r = LintSource(
      "t.cc", "std::map<uint32_t, std::unique_ptr<Tenant>> tenants_;\n", {});
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------- suppressions

TEST(DetlintSuppress, SameLineSuppressionWithReason) {
  const FileReport r = LintSource(
      "t.cc",
      "std::unordered_map<int, int> m;  "
      "// detlint: allow(unordered-container) lookup-only\n",
      {});
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "unordered-container");
}

TEST(DetlintSuppress, CommentAboveTargetsNextCodeLine) {
  const FileReport r = LintSource(
      "t.cc",
      "// detlint: allow(unordered-container) scratch table, never\n"
      "// iterated, so hash layout cannot reach event order.\n"
      "std::unordered_map<int, int> m;\n",
      {});
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed.size(), 1u);
}

TEST(DetlintSuppress, BareSuppressionIsViolationAndSilencesNothing) {
  const FileReport r = LintSource(
      "t.cc",
      "// detlint: allow(unordered-container)\n"
      "std::unordered_map<int, int> m;\n",
      {});
  EXPECT_TRUE(HasRule(r, "bare-suppression"));
  EXPECT_TRUE(HasRule(r, "unordered-container"));
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(DetlintSuppress, MalformedDirectiveIsViolation) {
  const FileReport r =
      LintSource("t.cc", "// detlint: disable everything\nint x;\n", {});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "bare-suppression");
}

TEST(DetlintSuppress, WrongRuleDoesNotSuppress) {
  const FileReport r = LintSource(
      "t.cc",
      "// detlint: allow(wall-clock) wrong rule named here\n"
      "std::unordered_map<int, int> m;\n",
      {});
  EXPECT_TRUE(HasRule(r, "unordered-container"));
}

TEST(DetlintSuppress, SuppressionDoesNotReachPastTargetLine) {
  const FileReport r = LintSource(
      "t.cc",
      "// detlint: allow(unordered-container) only covers the next line\n"
      "std::unordered_map<int, int> a;\n"
      "std::unordered_map<int, int> b;\n",
      {});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 3);
  EXPECT_EQ(r.suppressed.size(), 1u);
}

// ------------------------------------------------------------- allowlist

TEST(DetlintAllowlist, ParsesEntriesAndComments) {
  std::vector<AllowEntry> entries;
  std::string error;
  EXPECT_TRUE(ParseAllowlist(
      "# comment\n"
      "\n"
      "unordered-container generated/\n"
      "* third_party/vendored.h  # trailing comment\n",
      &entries, &error));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "unordered-container");
  EXPECT_EQ(entries[0].path_substring, "generated/");
  EXPECT_EQ(entries[1].rule, "*");
  EXPECT_EQ(entries[1].path_substring, "third_party/vendored.h");
}

TEST(DetlintAllowlist, RejectsUnknownRuleAndMissingPath) {
  std::vector<AllowEntry> entries;
  std::string error;
  EXPECT_FALSE(ParseAllowlist("no-such-rule src/\n", &entries, &error));
  EXPECT_NE(error.find("unknown rule"), std::string::npos);
  error.clear();
  EXPECT_FALSE(ParseAllowlist("wall-clock\n", &entries, &error));
  EXPECT_FALSE(error.empty());
}

TEST(DetlintAllowlist, MatchingEntrySilencesByPathSubstring) {
  std::vector<AllowEntry> allow = {{"unordered-container", "gen/"}};
  const std::string src = "std::unordered_map<int, int> m;\n";
  const FileReport hit = LintSource("gen/tables.h", src, allow);
  EXPECT_TRUE(hit.findings.empty());
  EXPECT_EQ(hit.allowlisted, 1);
  const FileReport miss = LintSource("src/core/tables.h", src, allow);
  EXPECT_EQ(miss.findings.size(), 1u);
}

// -------------------------------------------------------------- fixtures

TEST(DetlintFixtures, EachCanaryTripsItsRule) {
  EXPECT_TRUE(OnlyRule(LintFixture("canary_wall_clock.cc"), "wall-clock"));
  EXPECT_TRUE(OnlyRule(LintFixture("canary_ambient_rng.cc"), "ambient-rng"));
  EXPECT_TRUE(
      OnlyRule(LintFixture("canary_unordered_iter.cc"), "unordered-iter"));
  EXPECT_TRUE(
      OnlyRule(LintFixture("canary_pointer_key.cc"), "pointer-key"));
  EXPECT_TRUE(OnlyRule(LintFixture("canary_unordered_container.cc"),
                       "unordered-container"));
  const FileReport bare = LintFixture("canary_bare_suppression.cc");
  EXPECT_TRUE(HasRule(bare, "bare-suppression"));
  EXPECT_TRUE(HasRule(bare, "unordered-container"));
}

TEST(DetlintFixtures, CleanFixtureIsSilent) {
  const FileReport r = LintFixture("clean.cc");
  EXPECT_TRUE(r.findings.empty()) << r.findings[0].rule << " at line "
                                  << r.findings[0].line;
  EXPECT_TRUE(r.suppressed.empty());
}

TEST(DetlintFixtures, SuppressedFixtureIsSilentWithThreeSuppressions) {
  const FileReport r = LintFixture("suppressed_ok.cc");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed.size(), 3u);
}

TEST(DetlintFixtures, AllowlistedFixtureKeepsUncoveredRules) {
  std::vector<AllowEntry> allow;
  std::string error;
  ASSERT_TRUE(ParseAllowlist(ReadFixture("allow.txt"), &allow, &error))
      << error;
  const FileReport r = LintFixture("allowlisted.cc", allow);
  EXPECT_TRUE(OnlyRule(r, "wall-clock"));
  EXPECT_EQ(r.allowlisted, 1);
}

// ---------------------------------------------------------------- driver

TEST(DetlintDriver, CleanFileExitsZero) {
  std::ostringstream out, err;
  const int rc = RunDetlint({std::string(FIXTURE_DIR) + "/clean.cc"}, {},
                            out, err);
  EXPECT_EQ(rc, kExitClean);
  EXPECT_NE(out.str().find("0 violations"), std::string::npos);
}

TEST(DetlintDriver, FixtureDirExitsOneWithTextReport) {
  std::ostringstream out, err;
  const int rc = RunDetlint({std::string(FIXTURE_DIR)}, {}, out, err);
  EXPECT_EQ(rc, kExitViolations);
  // Report lines carry file:line: [rule] message.
  EXPECT_NE(out.str().find("canary_wall_clock.cc:"), std::string::npos);
  EXPECT_NE(out.str().find("[wall-clock]"), std::string::npos);
  EXPECT_NE(out.str().find("[pointer-key]"), std::string::npos);
}

TEST(DetlintDriver, MissingPathExitsTwo) {
  std::ostringstream out, err;
  const int rc = RunDetlint({"/no/such/path/anywhere"}, {}, out, err);
  EXPECT_EQ(rc, kExitError);
  EXPECT_FALSE(err.str().empty());
}

TEST(DetlintDriver, JsonReportParsesShape) {
  std::ostringstream out, err;
  RunOptions opts;
  opts.json = true;
  const int rc = RunDetlint(
      {std::string(FIXTURE_DIR) + "/canary_wall_clock.cc"}, opts, out, err);
  EXPECT_EQ(rc, kExitViolations);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"violations\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"wall-clock\""), std::string::npos);
}

TEST(DetlintDriver, ReportOrderIsSortedByPath) {
  std::ostringstream out, err;
  RunDetlint({std::string(FIXTURE_DIR)}, {}, out, err);
  const std::string text = out.str();
  const auto rng = text.find("canary_ambient_rng.cc");
  const auto wall = text.find("canary_wall_clock.cc");
  ASSERT_NE(rng, std::string::npos);
  ASSERT_NE(wall, std::string::npos);
  EXPECT_LT(rng, wall);
}

TEST(DetlintCatalog, HasAllTwelveRulesAcrossTwoAnalyzers) {
  const auto& catalog = RuleCatalog();
  ASSERT_EQ(catalog.size(), 12u);
  std::vector<std::string> ids;
  for (const RuleInfo& r : catalog) {
    ids.push_back(r.id);
    EXPECT_FALSE(r.description.empty());
    EXPECT_TRUE(r.analyzer == "determinism" || r.analyzer == "coroutine")
        << r.id << " -> " << r.analyzer;
  }
  for (const char* want :
       {"wall-clock", "ambient-rng", "unordered-container",
        "unordered-iter", "pointer-key", "bare-suppression",
        "coawait-ternary", "coro-ref-param", "coro-lambda-capture",
        "coro-untracked-loop", "coro-selfhandle-clear",
        "coro-manual-resume"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), want), ids.end()) << want;
  }
  EXPECT_EQ(AnalyzerNames().size(), 2u);
  EXPECT_EQ(AnalyzerForRule("wall-clock"), "determinism");
  EXPECT_EQ(AnalyzerForRule("coawait-ternary"), "coroutine");
  EXPECT_EQ(AnalyzerForRule("no-such-rule"), "");
}

// ------------------------------------------------------ context builder

TEST(DetlintContexts, RecoversTaskFunctionWithParams) {
  const LexResult lex = Lex(
      "sim::Task Worker(sim::Simulator& sim, int id,\n"
      "                 std::vector<int> data) {\n"
      "  co_await Delay(sim, 1);\n"
      "}\n");
  const auto ctxs = BuildFunctionContexts(lex);
  ASSERT_EQ(ctxs.size(), 1u);
  EXPECT_EQ(ctxs[0].name, "Worker");
  EXPECT_FALSE(ctxs[0].is_lambda);
  EXPECT_TRUE(ctxs[0].returns_task);
  EXPECT_TRUE(ctxs[0].is_coroutine);
  ASSERT_EQ(ctxs[0].params.size(), 3u);
  EXPECT_TRUE(ctxs[0].params[0].is_reference);
  EXPECT_FALSE(ctxs[0].params[1].is_reference);
  EXPECT_FALSE(ctxs[0].params[2].is_reference);
}

TEST(DetlintContexts, RecoversQualifiedMemberDefinition) {
  const LexResult lex = Lex(
      "sim::Task Dataplane::RunLoop() {\n"
      "  co_await sim::SelfHandle(&loop_handle_);\n"
      "  loop_handle_ = nullptr;\n"
      "}\n");
  const auto ctxs = BuildFunctionContexts(lex);
  ASSERT_EQ(ctxs.size(), 1u);
  EXPECT_EQ(ctxs[0].name, "RunLoop");
  EXPECT_TRUE(ctxs[0].registers_self_handle);
}

TEST(DetlintContexts, SkipsDeclarationsWithoutBody) {
  const LexResult lex = Lex("sim::Task Worker(int id);\n");
  EXPECT_TRUE(BuildFunctionContexts(lex).empty());
}

TEST(DetlintContexts, RecoversLambdaAndDistinguishesSubscript) {
  const LexResult lex = Lex(
      "void f(std::vector<int>& v) {\n"
      "  auto add = [&v](int x) { v[0] += x; };\n"
      "  add(v[1]);\n"
      "}\n");
  const auto ctxs = BuildFunctionContexts(lex);
  ASSERT_EQ(ctxs.size(), 1u);
  EXPECT_TRUE(ctxs[0].is_lambda);
  EXPECT_TRUE(ctxs[0].has_capture);
  EXPECT_FALSE(ctxs[0].returns_task);
}

TEST(DetlintContexts, TaskLambdaWithTrailingReturnType) {
  const LexResult lex = Lex(
      "auto spawn = [](sim::Simulator* sim) -> sim::Task {\n"
      "  co_await Delay(*sim, 1);\n"
      "};\n");
  const auto ctxs = BuildFunctionContexts(lex);
  ASSERT_EQ(ctxs.size(), 1u);
  EXPECT_TRUE(ctxs[0].is_lambda);
  EXPECT_FALSE(ctxs[0].has_capture);
  EXPECT_TRUE(ctxs[0].returns_task);
  EXPECT_TRUE(ctxs[0].is_coroutine);
}

// ------------------------------------------------------- corolint rules

FileReport LintCoro(const std::string& src) {
  return LintSource("t.cc", src, {}, {"coroutine"});
}

TEST(CorolintRules, CoawaitOnTernaryOperand) {
  const FileReport r = LintCoro(
      "sim::Task F(Session* s, bool w) {\n"
      "  auto res = co_await (w ? s->Write(1) : s->Read(1));\n"
      "}\n");
  EXPECT_TRUE(OnlyRule(r, "coawait-ternary"));
  EXPECT_EQ(r.findings[0].line, 2);
}

TEST(CorolintRules, CoawaitInTernaryArms) {
  const FileReport r = LintCoro(
      "sim::Task F(Session* s, bool w) {\n"
      "  auto res = w ? co_await s->Write(1) : co_await s->Read(1);\n"
      "}\n");
  EXPECT_TRUE(OnlyRule(r, "coawait-ternary"));
}

TEST(CorolintRules, CoawaitTernaryNegatives) {
  // Ternaries inside call arguments, and ternaries with no co_await at
  // the top level, are fine.
  const FileReport r = LintCoro(
      "sim::Task F(sim::Simulator* sim, bool fast) {\n"
      "  co_await sim::Delay(*sim, fast ? 1 : 100);\n"
      "  int x = fast ? 1 : 2;\n"
      "  (void)x;\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].rule << " at " << r.findings[0].line;
}

TEST(CorolintRules, RefParamOnCoroutine) {
  const FileReport r = LintCoro(
      "sim::Task F(Backend& backend, int id) {\n"
      "  co_await backend.Read(id);\n"
      "}\n");
  EXPECT_TRUE(OnlyRule(r, "coro-ref-param"));
}

TEST(CorolintRules, RefParamNegatives) {
  // Pointers and by-value params are fine; non-coroutine Task factories
  // (no co_await in the body) take references legitimately.
  const FileReport r = LintCoro(
      "sim::Task F(Backend* backend, std::vector<int> data) {\n"
      "  co_await backend->Read(data[0]);\n"
      "}\n"
      "sim::Task G(Backend& backend) { return F(&backend, {}); }\n");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].rule << " at " << r.findings[0].line;
}

TEST(CorolintRules, CapturingLambdaCoroutine) {
  const FileReport r = LintCoro(
      "void Spawn(sim::Simulator* sim) {\n"
      "  auto t = [sim]() -> sim::Task { co_await Delay(*sim, 1); };\n"
      "  t();\n"
      "}\n");
  EXPECT_TRUE(OnlyRule(r, "coro-lambda-capture"));
}

TEST(CorolintRules, CapturelessLambdaCoroutineIsClean) {
  const FileReport r = LintCoro(
      "void Spawn(sim::Simulator* sim) {\n"
      "  auto t = [](sim::Simulator* s) -> sim::Task {\n"
      "    co_await Delay(*s, 1);\n"
      "  };\n"
      "  t(sim);\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(CorolintRules, UntrackedInfiniteLoop) {
  const FileReport r = LintCoro(
      "sim::Task Poll(sim::Simulator* sim) {\n"
      "  for (;;) {\n"
      "    co_await sim::Delay(*sim, 100);\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(OnlyRule(r, "coro-untracked-loop"));
}

TEST(CorolintRules, TrackedOrTerminatingLoopsAreClean) {
  const FileReport r = LintCoro(
      // Registered frame: owner can destroy it.
      "sim::Task Monitor(Plane* p) {\n"
      "  co_await sim::SelfHandle(&p->monitor_handle_);\n"
      "  for (;;) {\n"
      "    co_await sim::Delay(p->sim(), 100);\n"
      "  }\n"
      "}\n"
      // Loop with a top-level break terminates.
      "sim::Task Fetch(Cache* c) {\n"
      "  for (;;) {\n"
      "    co_await c->Wait();\n"
      "    if (c->Ready()) break;\n"
      "  }\n"
      "}\n"
      // co_return inside the loop terminates it too.
      "sim::Task Drain(Queue* q) {\n"
      "  while (true) {\n"
      "    co_await q->Pop();\n"
      "    if (q->Empty()) co_return;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].rule << " at " << r.findings[0].line;
}

TEST(CorolintRules, BreakInNestedLoopDoesNotTerminateOuter) {
  const FileReport r = LintCoro(
      "sim::Task Poll(Plane* p) {\n"
      "  for (;;) {\n"
      "    co_await p->Tick();\n"
      "    for (int i = 0; i < 4; ++i) {\n"
      "      if (p->Done(i)) break;\n"
      "    }\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(OnlyRule(r, "coro-untracked-loop"));
}

TEST(CorolintRules, SelfHandleSlotNeverCleared) {
  const FileReport r = LintCoro(
      "sim::Task Worker::Run() {\n"
      "  co_await sim::SelfHandle(&loop_handle_);\n"
      "  while (running_) {\n"
      "    co_await Tick();\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(OnlyRule(r, "coro-selfhandle-clear"));
}

TEST(CorolintRules, SelfHandleClearedByAssignOrErase) {
  const FileReport r = LintCoro(
      "sim::Task Worker::Run() {\n"
      "  co_await sim::SelfHandle(&loop_handle_);\n"
      "  while (running_) {\n"
      "    co_await Tick();\n"
      "  }\n"
      "  loop_handle_ = nullptr;\n"
      "}\n"
      "sim::Task Copier::Run(int id) {\n"
      "  co_await sim::SelfHandle(&copy_handles_[id]);\n"
      "  co_await Copy(id);\n"
      "  copy_handles_.erase(id);\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].rule << " at " << r.findings[0].line;
}

TEST(CorolintRules, SelfHandleEqualityCompareIsNotAClear) {
  const FileReport r = LintCoro(
      "sim::Task Worker::Run() {\n"
      "  co_await sim::SelfHandle(&loop_handle_);\n"
      "  co_await Tick();\n"
      "  if (loop_handle_ == nullptr) { co_return; }\n"
      "}\n");
  EXPECT_TRUE(OnlyRule(r, "coro-selfhandle-clear"));
}

TEST(CorolintRules, ManualResumeOutsideEventQueue) {
  const FileReport r = LintCoro(
      "void Deliver(std::coroutine_handle<> h) {\n"
      "  h.resume();\n"
      "}\n");
  EXPECT_TRUE(OnlyRule(r, "coro-manual-resume"));
}

TEST(CorolintRules, ResumeViaScheduleAfterIsClean) {
  const FileReport r = LintCoro(
      "void Deliver(sim::Simulator& sim, std::coroutine_handle<> h) {\n"
      "  sim.ScheduleAfter(0, [h] { h.resume(); });\n"
      "}\n"
      "void Later(sim::Simulator& sim, std::coroutine_handle<> h) {\n"
      "  sim.ScheduleAt(100, [h]() { h.resume(); });\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].rule << " at " << r.findings[0].line;
}

TEST(CorolintRules, SuppressionsCoverCorolintRules) {
  const FileReport r = LintCoro(
      "// detlint: allow(coro-ref-param) backend outlives the sim; owner\n"
      "// joins all workers before teardown.\n"
      "sim::Task F(Backend& backend) {\n"
      "  co_await backend.Read(0);\n"
      "}\n");
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.suppressed.size(), 1u);
  EXPECT_EQ(r.suppressed[0].rule, "coro-ref-param");
}

// ---------------------------------------------------- analyzer selection

TEST(DetlintAnalyzers, SelectionFiltersRuleFamilies) {
  const std::string src =
      "std::unordered_map<int, int> m;\n"
      "sim::Task F(Backend& b) { co_await b.Read(0); }\n";
  const FileReport det = LintSource("t.cc", src, {}, {"determinism"});
  EXPECT_TRUE(OnlyRule(det, "unordered-container"));
  const FileReport coro = LintSource("t.cc", src, {}, {"coroutine"});
  EXPECT_TRUE(OnlyRule(coro, "coro-ref-param"));
  const FileReport both = LintSource("t.cc", src, {}, {});
  EXPECT_TRUE(HasRule(both, "unordered-container"));
  EXPECT_TRUE(HasRule(both, "coro-ref-param"));
}

TEST(DetlintAnalyzers, JsonReportCarriesAnalyzerField) {
  std::ostringstream out, err;
  RunOptions opts;
  opts.json = true;
  const int rc = RunDetlint(
      {std::string(FIXTURE_DIR) + "/canary_coawait_ternary.cc"}, opts, out,
      err);
  EXPECT_EQ(rc, kExitViolations);
  EXPECT_NE(out.str().find("\"analyzer\": \"coroutine\""),
            std::string::npos)
      << out.str();
}

TEST(DetlintFixtures, CorolintCanariesTripTheirRules) {
  EXPECT_TRUE(OnlyRule(LintFixture("canary_coawait_ternary.cc"),
                       "coawait-ternary"));
  EXPECT_TRUE(
      OnlyRule(LintFixture("canary_coro_ref_param.cc"), "coro-ref-param"));
  EXPECT_TRUE(OnlyRule(LintFixture("canary_coro_lambda_capture.cc"),
                       "coro-lambda-capture"));
  EXPECT_TRUE(OnlyRule(LintFixture("canary_coro_untracked_loop.cc"),
                       "coro-untracked-loop"));
  EXPECT_TRUE(OnlyRule(LintFixture("canary_coro_selfhandle_clear.cc"),
                       "coro-selfhandle-clear"));
  EXPECT_TRUE(OnlyRule(LintFixture("canary_coro_manual_resume.cc"),
                       "coro-manual-resume"));
}

TEST(DetlintFixtures, CoroCleanFixtureIsSilent) {
  const FileReport r = LintFixture("coro_clean.cc");
  EXPECT_TRUE(r.findings.empty()) << r.findings[0].rule << " at line "
                                  << r.findings[0].line;
}

}  // namespace
}  // namespace detlint
