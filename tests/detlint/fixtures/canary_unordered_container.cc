// Planted canary: unordered container declarations without a
// suppression reason anywhere near them.
#include <unordered_map>
#include <unordered_set>

int Canary() {
  std::unordered_map<int, int> m;
  std::unordered_set<long> s;
  m[1] = 2;
  s.insert(3);
  return m.at(1) + static_cast<int>(s.count(3));
}
