// Planted canary: co_await combined with conditional expressions, in
// both shapes. corolint must flag every site.
#include "fake_sim.h"

sim::Task OperandForm(Session* s, bool is_write) {
  auto r = co_await (is_write ? s->Write(1) : s->Read(1));
  (void)r;
}

sim::Task ArmForm(Session* s, bool is_write) {
  auto r = is_write ? co_await s->Write(1) : co_await s->Read(1);
  (void)r;
}
