// Planted canary: infinite-loop coroutine that never registers its
// frame via co_await sim::SelfHandle, so no owner can destroy it when
// the simulation ends mid-await.
#include "fake_sim.h"

sim::Task PollForever(sim::Simulator* sim, Session* session) {
  for (;;) {
    co_await sim::Delay(*sim, 100);
    co_await session->Read(0);
  }
}

sim::Task SpinForever(sim::Simulator* sim) {
  while (true) {
    co_await sim::Delay(*sim, 1);
  }
}
