// Planted canary: coroutine_handle::resume() called directly instead
// of through the simulator event queue.
#include "fake_sim.h"

void Deliver(std::coroutine_handle<> h) {
  h.resume();
}

void DeliverLater(Waiter* w) {
  w->handle->resume();
}
