// Fixture used with allow.txt: the unordered-container findings here
// are exempted by allowlist entry, not by in-tree suppression. The
// wall-clock finding is NOT covered and must still surface.
#include <chrono>
#include <unordered_map>

long Allowlisted() {
  std::unordered_map<int, int> m;
  m[1] = 2;
  auto t = std::chrono::system_clock::now();
  return m.at(1) + t.time_since_epoch().count();
}
