// Planted canary: a coroutine registers its frame in a SelfHandle
// slot, can return normally, and never clears the slot -- the frame
// self-destructs on return and the stored handle dangles.
#include "fake_sim.h"

sim::Task Worker::Run() {
  co_await sim::SelfHandle(&loop_handle_);
  while (running_) {
    co_await Tick();
  }
}
