// Planted canary: pointer-valued keys. Addresses differ across runs
// under ASLR, so any ordering or hashing of them is nondeterministic.
#include <map>
#include <set>

struct Conn {
  int id;
};

int Canary(Conn* a, Conn* b) {
  std::map<Conn*, int> by_conn;
  std::set<const Conn*> live;
  by_conn[a] = 1;
  live.insert(b);
  std::less<Conn*> cmp;
  return by_conn.size() + live.size() + (cmp(a, b) ? 1 : 0);
}
