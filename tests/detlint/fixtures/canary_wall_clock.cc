// Planted canary: wall-clock reads. detlint must flag every site.
#include <chrono>
#include <ctime>

long Canary() {
  auto a = std::chrono::system_clock::now();
  auto b = std::chrono::steady_clock::now();
  auto c = std::chrono::high_resolution_clock::now();
  long d = time(nullptr);
  struct timespec ts;
  clock_gettime(0, &ts);
  (void)a;
  (void)b;
  (void)c;
  return d + ts.tv_sec;
}
