// Planted canary: iteration over an unordered container. The
// declarations themselves are suppressed with a reason, so the only
// findings left are the [unordered-iter] ones -- iteration stays a
// violation even where the declaration was excused.
#include <unordered_map>
#include <unordered_set>

int Canary() {
  // detlint: allow(unordered-container) canary fixture: the decl is
  // excused so that only the iteration below trips the linter.
  std::unordered_map<int, int> counts;
  // detlint: allow(unordered-container) canary fixture: same as above.
  std::unordered_set<int> seen;
  int sum = 0;
  for (const auto& kv : counts) sum += kv.second;
  for (auto it = seen.begin(); it != seen.end(); ++it) sum += *it;
  return sum;
}
