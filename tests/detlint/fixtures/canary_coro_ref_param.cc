// Planted canary: sim::Task coroutine taking parameters by reference.
// The frame suspends and may outlive the referents.
#include "fake_sim.h"

sim::Task Worker(Session& session, const std::vector<int>& lbas) {
  for (int lba : lbas) {
    co_await session.Read(lba);
  }
}
