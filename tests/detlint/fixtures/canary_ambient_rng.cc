// Planted canary: ambient randomness. detlint must flag every site.
#include <cstdlib>
#include <random>

int Canary() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::mt19937_64 gen64(1);
  srand(42);
  return rand() + static_cast<int>(gen() + gen64());
}
