// Planted canary: suppressions without reasons. A bare directive is
// itself a violation and silences nothing -- the unordered-container
// finding below must still surface alongside the bare-suppression one.
#include <unordered_map>

int Canary() {
  // detlint: allow(unordered-container)
  std::unordered_map<int, int> m;
  // detlint: disable-everything-forever
  m[1] = 2;
  return m.at(1);
}
