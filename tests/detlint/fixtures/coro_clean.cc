// Negative fixture: coroutine code following every rule in the
// ownership rulebook (DESIGN.md section 18). corolint must stay
// silent on all of it.
#include "fake_sim.h"

// Conditional logic around awaits spelled as if/else, ternaries only
// inside call arguments.
sim::Task IfElseAwait(Session* session, bool is_write, bool fast,
                      sim::Simulator* sim) {
  co_await sim::Delay(*sim, fast ? 1 : 100);
  int r;
  if (is_write) {
    r = co_await session->Write(1);
  } else {
    r = co_await session->Read(1);
  }
  (void)r;
}

// Parameters by pointer or by value; a Task factory (not itself a
// coroutine) may take references.
sim::Task PointerParams(Session* session, std::vector<int> lbas) {
  for (int lba : lbas) {
    co_await session->Read(lba);
  }
}

sim::Task Factory(Session& session) {
  return PointerParams(&session, {1, 2, 3});
}

// Captureless lambda coroutine: state flows through parameters.
void SpawnClean(sim::Simulator* sim) {
  auto task = [](sim::Simulator* s) -> sim::Task {
    co_await sim::Delay(*s, 1);
  };
  task(sim);
}

// Infinite loop with a registered frame, slot cleared before return.
sim::Task Worker::Run() {
  co_await sim::SelfHandle(&loop_handle_);
  while (running_) {
    co_await Tick();
  }
  loop_handle_ = nullptr;
}

// Terminating loops need no registration.
sim::Task DrainQueue(Queue* q) {
  for (;;) {
    co_await q->Pop();
    if (q->Empty()) break;
  }
}

// Resume through the event queue only.
void DeliverClean(sim::Simulator& sim, std::coroutine_handle<> h) {
  sim.ScheduleAfter(0, [h] { h.resume(); });
}
