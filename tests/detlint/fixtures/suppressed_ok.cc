// Negative fixture: every violation carries a reasoned suppression,
// so the file reports zero findings (and three suppressed).
#include <unordered_map>

int Suppressed() {
  // detlint: allow(unordered-container) lookup-only scratch table;
  // never iterated, so hash layout cannot reach event order.
  std::unordered_map<int, int> scratch;
  scratch[1] = 2;
  std::unordered_map<int, int> inline_ok;  // detlint: allow(unordered-container) same-line form: lookup-only
  inline_ok[3] = 4;
  // detlint: allow(all) wildcard form covers any rule on the next line.
  std::unordered_map<int, int> wild;
  wild[5] = 6;
  return scratch.at(1) + inline_ok.at(3) + wild.at(5);
}
