// Negative fixture: deterministic code that must produce no findings.
// Mentions of banned names inside comments, strings and preprocessor
// lines must not trip the lexer-based rules:
//   std::chrono::system_clock, rand(), std::unordered_map iteration.
#include <unordered_map>  // include line itself must not fire
#include <map>
#include <set>
#include <string>
#include <vector>

int Clean() {
  std::map<int, int> m;
  std::set<std::string> s;
  std::vector<int> v{3, 1, 2};
  m[1] = 2;
  s.insert("time(nullptr) and std::mt19937 inside a string literal");
  int sum = 0;
  for (const auto& kv : m) sum += kv.second;  // ordered: fine
  for (int x : v) sum += x;
  // A member function named time() is not the C library call:
  struct Clock {
    int time() { return 4; }
  } clock;
  sum += clock.time();
  return sum + static_cast<int>(s.size());
}
