// Planted canary: capturing-lambda coroutine. The captures live in the
// lambda object, a temporary that dies before the first resume.
#include "fake_sim.h"

void Spawn(sim::Simulator* sim, Session* session) {
  auto task = [sim, session]() -> sim::Task {
    co_await sim::Delay(*sim, 100);
    co_await session->Read(0);
  };
  task();
}
