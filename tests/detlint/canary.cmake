# Runs detlint over one planted fixture and asserts both halves of the
# canary contract: the expected rule fires in the report AND the exit
# status is nonzero. ctest's PASS_REGULAR_EXPRESSION alone would accept
# a matching report from a binary that wrongly exited 0, which is
# exactly the regression CI must catch.
#
# Variables: DETLINT (binary path), FIXTURE (file to lint), RULE
# (expected rule id).
execute_process(
  COMMAND "${DETLINT}" "${FIXTURE}"
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "canary not caught: detlint exited 0 on ${FIXTURE}\n${out}${err}")
endif()
if(NOT out MATCHES "\\[${RULE}\\]")
  message(FATAL_ERROR
    "canary caught for the wrong reason: expected [${RULE}] in the "
    "report for ${FIXTURE} (exit ${rc})\n${out}${err}")
endif()
