#include "sim/task.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace reflex::sim {
namespace {

Task DelayTwice(Simulator& sim, std::vector<TimeNs>& log) {
  log.push_back(sim.Now());
  co_await Delay(sim, 100);
  log.push_back(sim.Now());
  co_await Delay(sim, 50);
  log.push_back(sim.Now());
}

TEST(TaskTest, DelayAdvancesSimTime) {
  Simulator sim;
  std::vector<TimeNs> log;
  DelayTwice(sim, log);
  sim.Run();
  EXPECT_EQ(log, (std::vector<TimeNs>{0, 100, 150}));
}

Task Producer(Simulator& sim, Promise<int> p) {
  co_await Delay(sim, 500);
  p.Set(42);
}

Task Consumer(Simulator& sim, Future<int> f, int& result, TimeNs& when) {
  result = co_await f;
  when = sim.Now();
}

TEST(TaskTest, FuturePromiseHandoff) {
  Simulator sim;
  Promise<int> p(sim);
  int result = 0;
  TimeNs when = -1;
  Consumer(sim, p.GetFuture(), result, when);
  Producer(sim, p);
  sim.Run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(when, 500);
}

TEST(TaskTest, AwaitingReadyFutureDoesNotSuspend) {
  Simulator sim;
  Promise<int> p(sim);
  p.Set(7);
  int result = 0;
  TimeNs when = -1;
  Consumer(sim, p.GetFuture(), result, when);
  sim.Run();
  EXPECT_EQ(result, 7);
  EXPECT_EQ(when, 0);
}

TEST(TaskTest, FutureReadyAndGet) {
  Simulator sim;
  Promise<int> p(sim);
  Future<int> f = p.GetFuture();
  EXPECT_FALSE(f.Ready());
  p.Set(9);
  EXPECT_TRUE(f.Ready());
  EXPECT_EQ(f.Get(), 9);
}

Task Worker(Simulator& sim, Semaphore& sem, TimeNs hold, std::vector<int>& log,
            int id) {
  co_await sem.Acquire();
  log.push_back(id);
  co_await Delay(sim, hold);
  sem.Release();
}

TEST(TaskTest, SemaphoreSerializesAccess) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) Worker(sim, sem, 100, log, i);
  sim.Run();
  // FIFO order, one at a time.
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sem.Available(), 1);
  EXPECT_EQ(sem.Waiters(), 0u);
}

TEST(TaskTest, SemaphoreAllowsConcurrencyUpToCount) {
  Simulator sim;
  Semaphore sem(sim, 3);
  std::vector<int> log;
  TimeNs all_started = -1;
  for (int i = 0; i < 3; ++i) Worker(sim, sem, 1000, log, i);
  sim.ScheduleAt(1, [&] { all_started = static_cast<TimeNs>(log.size()); });
  sim.Run();
  EXPECT_EQ(all_started, 3);  // none had to wait
}

TEST(TaskTest, SemaphoreTryAcquire) {
  Simulator sim;
  Semaphore sem(sim, 2);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

Task ArriveAfter(Simulator& sim, Barrier& barrier, TimeNs t) {
  co_await Delay(sim, t);
  barrier.Arrive();
}

Task WaitBarrier(Barrier& barrier, TimeNs& done, Simulator& sim) {
  co_await barrier.Done();
  done = sim.Now();
}

TEST(TaskTest, BarrierWaitsForAllArrivals) {
  Simulator sim;
  Barrier barrier(sim, 3);
  TimeNs done = -1;
  WaitBarrier(barrier, done, sim);
  ArriveAfter(sim, barrier, 100);
  ArriveAfter(sim, barrier, 300);
  ArriveAfter(sim, barrier, 200);
  sim.Run();
  EXPECT_EQ(done, 300);
}

TEST(TaskTest, BarrierWithZeroExpectedIsImmediatelyDone) {
  Simulator sim;
  Barrier barrier(sim, 0);
  EXPECT_TRUE(barrier.Done().Ready());
}

Task Chain(Simulator& sim, int depth, Promise<int> out) {
  if (depth == 0) {
    out.Set(0);
    co_return;
  }
  Promise<int> inner(sim);
  Chain(sim, depth - 1, inner);
  int v = co_await inner.GetFuture();
  out.Set(v + 1);
}

TEST(TaskTest, DeepChainsDoNotOverflowStack) {
  Simulator sim;
  Promise<int> p(sim);
  Chain(sim, 5000, p);
  sim.Run();
  EXPECT_TRUE(p.GetFuture().Ready());
  EXPECT_EQ(p.GetFuture().Get(), 5000);
}

}  // namespace
}  // namespace reflex::sim
