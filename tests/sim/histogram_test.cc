#include "sim/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>

#include "sim/random.h"

namespace reflex::sim {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.Min(), 1000);
  EXPECT_EQ(h.Max(), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
  // Bucketed value is within the histogram's relative error.
  EXPECT_NEAR(h.Percentile(0.5), 1000, 1000 * 0.04);
}

TEST(HistogramTest, ExactInLinearRange) {
  // Values below the sub-bucket count are stored exactly.
  Histogram h(6);
  for (int v = 0; v < 64; ++v) h.Record(v);
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(1.0), 63);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 63);
}

TEST(HistogramTest, OctaveBoundariesBucketConsistently) {
  // Values straddling octave boundaries (the end of the exact linear
  // range and each power-of-two rollover after it) must land in
  // buckets whose midpoint stays within the histogram's relative
  // error, and adjacent boundary values must never swap order.
  Histogram h(6);  // linear through 63; octaves start at 64
  const int64_t boundaries[] = {62, 63, 64, 65, 127, 128, 129,
                                255, 256, 4095, 4096, (1LL << 20) - 1,
                                1LL << 20, (1LL << 20) + 1};
  for (int64_t v : boundaries) {
    Histogram single(6);
    single.Record(v);
    const auto p50 = static_cast<double>(single.Percentile(0.5));
    EXPECT_NEAR(p50, static_cast<double>(v),
                static_cast<double>(v) * 0.04)
        << "boundary value " << v;
    h.Record(v);
  }
  // One sample per boundary: quantiles walk the boundaries in order.
  EXPECT_EQ(h.Count(), static_cast<int64_t>(std::size(boundaries)));
  EXPECT_EQ(h.Percentile(0.0), 62);
  EXPECT_EQ(h.Percentile(1.0), (1LL << 20) + 1);
  int64_t prev = -1;
  for (size_t i = 1; i <= std::size(boundaries); ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(std::size(boundaries));
    const int64_t v = h.Percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(HistogramTest, LinearRangeEndIsExactAndFirstOctaveIsNot) {
  // 63 is the last exactly-stored value with 64 sub-buckets; 64 and
  // 65 share the first two-wide bucket of octave 1 and read back as
  // that bucket's midpoint, while 66 belongs to the next bucket.
  Histogram a(6);
  a.Record(63);
  EXPECT_EQ(a.Percentile(0.5), 63);

  Histogram b(6);
  b.Record(64);
  Histogram c(6);
  c.Record(65);
  // Same bucket => same representative value (clamped to min/max).
  EXPECT_EQ(b.Percentile(0.5), 64);  // midpoint 65 clamped to max=64
  EXPECT_EQ(c.Percentile(0.5), 65);

  Histogram d(6);
  d.Record(66);
  EXPECT_GT(d.Percentile(0.5), b.Percentile(0.5));
}

TEST(HistogramTest, PercentileClampsToObservedMinMax) {
  // Bucket midpoints can exceed the true extremes; Percentile must
  // clamp to the exactly-tracked min/max at the tails.
  Histogram h;
  h.Record(1000001);
  h.Record(1000001);
  EXPECT_EQ(h.Percentile(0.0), 1000001);
  EXPECT_EQ(h.Percentile(1.0), 1000001);
  EXPECT_EQ(h.Percentile(0.5), 1000001)
      << "single-bucket population reads back min==max";
}

TEST(HistogramTest, PercentileMonotone) {
  Histogram h;
  Rng rng(77);
  for (int i = 0; i < 100000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextExponential(50000.0)));
  }
  int64_t prev = -1;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    int64_t v = h.Percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(HistogramTest, RelativeErrorBounded) {
  // For a wide range of magnitudes, recording a single value and
  // reading back p50 must stay within ~4% (2^-5) relative error.
  for (int64_t v = 10; v < (1LL << 40); v *= 7) {
    Histogram h;
    h.Record(v);
    const double err =
        std::abs(static_cast<double>(h.Percentile(0.5) - v)) /
        static_cast<double>(v);
    EXPECT_LT(err, 0.04) << "v=" << v;
  }
}

TEST(HistogramTest, ExponentialPercentilesMatchTheory) {
  Histogram h;
  Rng rng(123);
  const double mean = 100000.0;
  for (int i = 0; i < 400000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextExponential(mean)));
  }
  // p95 of Exp(mean) = mean * ln(20) ~= 2.9957 * mean.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.95)), mean * std::log(20.0),
              mean * 0.1);
  EXPECT_NEAR(h.Mean(), mean, mean * 0.02);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.Min(), 0);
}

TEST(HistogramTest, RecordManyEquivalentToLoop) {
  Histogram a, b;
  a.RecordMany(500, 1000);
  for (int i = 0; i < 1000; ++i) b.Record(500);
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_EQ(a.Percentile(0.5), b.Percentile(0.5));
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  for (int i = 0; i < 1000; ++i) a.Record(100);
  for (int i = 0; i < 1000; ++i) b.Record(10000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2000);
  EXPECT_EQ(a.Min(), 100);
  EXPECT_EQ(a.Max(), 10000);
  EXPECT_NEAR(a.Mean(), 5050.0, 1.0);
  // Median falls between the two spikes; p75 is in the upper spike.
  EXPECT_NEAR(a.Percentile(0.75), 10000, 10000 * 0.04);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  h.Record(7);
  EXPECT_EQ(h.Count(), 1);
}

TEST(HistogramTest, StdDevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(5000);
  EXPECT_NEAR(h.StdDev(), 0.0, 1e-9);
}

TEST(HistogramTest, StdDevOfKnownDistribution) {
  Histogram h;
  Rng rng(55);
  for (int i = 0; i < 200000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextExponential(1000.0)));
  }
  // Exp: stddev == mean.
  EXPECT_NEAR(h.StdDev(), 1000.0, 30.0);
}

TEST(HistogramTest, SummaryStringContainsStats) {
  Histogram h;
  h.Record(1000);
  std::string s = h.SummaryUs();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("p95"), std::string::npos);
}

}  // namespace
}  // namespace reflex::sim
