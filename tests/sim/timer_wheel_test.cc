#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

// Determinism golden tests for the hierarchical timer-wheel engine:
// ordering across cascade boundaries, Cancel() raced against expiry,
// and equivalence against a reference (time, seq) priority queue under
// randomized schedule/cancel workloads. The wheel geometry these edges
// target: a 4096-slot one-nanosecond near wheel (level 0), then
// 64-slot overflow levels 2^12, 2^18, 2^24, ... ns wide.

namespace reflex::sim {
namespace {

/** Runs the simulator and records event ids in dispatch order. */
class OrderRecorder {
 public:
  explicit OrderRecorder(Simulator& sim) : sim_(sim) {}

  TimerHandle At(TimeNs t, int id) {
    return sim_.ScheduleAt(t, [this, id] { order_.push_back(id); });
  }

  const std::vector<int>& order() const { return order_; }

 private:
  Simulator& sim_;
  std::vector<int> order_;
};

TEST(TimerWheelTest, OrderingAcrossNearWheelBoundary) {
  Simulator sim;
  OrderRecorder rec(sim);
  // Around the near-wheel horizon (4096 ns from time zero): 4095 is
  // the last level-0 delta, 4096/4097 start life in overflow level 1
  // and must cascade down in order.
  rec.At(4097, 0);
  rec.At(4095, 1);
  rec.At(4096, 2);
  rec.At(4094, 3);
  sim.Run();
  EXPECT_EQ(rec.order(), (std::vector<int>{3, 1, 2, 0}));
  EXPECT_EQ(sim.Now(), 4097);
}

TEST(TimerWheelTest, OrderingAcrossLevelOneBoundary) {
  Simulator sim;
  OrderRecorder rec(sim);
  // 2^18 is the level-1 horizon from time zero.
  const TimeNs edge = TimeNs{1} << 18;
  rec.At(edge + 1, 0);
  rec.At(edge, 1);
  rec.At(edge - 1, 2);
  sim.Run();
  EXPECT_EQ(rec.order(), (std::vector<int>{2, 1, 0}));
}

TEST(TimerWheelTest, FarFutureOverflowLevelsDispatchInOrder) {
  Simulator sim;
  OrderRecorder rec(sim);
  // One event per overflow magnitude, scheduled in reverse order.
  std::vector<TimeNs> times;
  for (int bit = 55; bit >= 13; bit -= 6) {
    times.push_back((TimeNs{1} << bit) + 12345);
  }
  for (size_t i = 0; i < times.size(); ++i) {
    rec.At(times[i], static_cast<int>(i));
  }
  sim.Run();
  std::vector<int> want(times.size());
  for (size_t i = 0; i < want.size(); ++i) {
    want[i] = static_cast<int>(want.size() - 1 - i);
  }
  EXPECT_EQ(rec.order(), want);
  EXPECT_EQ(sim.Now(), times.front());
}

// Regression: a delta near the top of a level's range scheduled while
// the wheel position sits mid-bucket lands exactly one full ring ahead
// and would alias the slot holding the current time; before the
// promotion fix in InsertNode this cascaded into itself forever.
TEST(TimerWheelTest, MidBucketScheduleAtLevelHorizonDoesNotHang) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(1, [&] {
    // Now() == pos == 1; delta == 2^18 - 1 targets level 1 but lands
    // 64 level-1 buckets ahead (bucket 64 vs current bucket 0).
    sim.ScheduleAt(TimeNs{1} << 18, [&] { ++ran; });
    // Same shape one level up: delta just below the level-2 horizon.
    sim.ScheduleAt(TimeNs{1} << 24, [&] { ++ran; });
  });
  sim.Run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), TimeNs{1} << 24);
}

// Regression: NextDue used to cascade far-future slots eagerly even
// when RunUntil's horizon was nowhere near them, advancing the wheel
// position past the caller's clock; a later near-time schedule then
// computed a negative (wrapped) delta, misplaced itself in the top
// level and cascaded into itself forever.
TEST(TimerWheelTest, NearScheduleAfterIdleSliceWithFarFutureEvent) {
  Simulator sim;
  std::vector<int> order;
  // Parked ~18 minutes out; every RunUntil slice below ends long
  // before it, so it must not drag the wheel position forward.
  sim.ScheduleAt(TimeNs{1} << 40, [&] { order.push_back(99); });
  for (int slice = 0; slice < 5; ++slice) {
    sim.RunUntil(sim.Now() + Millis(1));
  }
  EXPECT_EQ(sim.Now(), Millis(5));
  // Near-time schedule after the idle slices: must fire at its time,
  // in order, ahead of the far-future event.
  sim.ScheduleAfter(Micros(10), [&] { order.push_back(1); });
  sim.RunUntil(sim.Now() + Millis(1));
  EXPECT_EQ(order, (std::vector<int>{1}));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 99}));
  EXPECT_EQ(sim.Now(), TimeNs{1} << 40);
}

// Same-timestamp FIFO must survive cascading: an event scheduled first
// (lower seq) but parked in an overflow level has to dispatch before a
// later schedule (higher seq) that was inserted directly into the near
// wheel for the same timestamp.
TEST(TimerWheelTest, SameTimestampFifoAcrossCascade) {
  Simulator sim;
  OrderRecorder rec(sim);
  const TimeNs t = 100000;  // > 4096: starts in an overflow level
  rec.At(t, 0);             // seq 0, via cascade
  sim.ScheduleAt(t - 50, [&] {
    // Near-wheel window now covers t: this insert goes straight to
    // level 0 with a higher seq, and must run second.
    rec.At(t, 1);
  });
  sim.Run();
  EXPECT_EQ(rec.order(), (std::vector<int>{0, 1}));
}

TEST(TimerWheelTest, CancelRacedAgainstExpirySameTimestamp) {
  Simulator sim;
  int ran = 0;
  TimerHandle victim;
  // First event at t cancels the second event at the same t: the
  // same-timestamp batch must observe the cancellation mid-run.
  sim.ScheduleAt(10, [&] { EXPECT_TRUE(sim.Cancel(victim)); });
  victim = sim.ScheduleAt(10, [&] { ++ran; });
  sim.ScheduleAt(10, [&] { ++ran; });  // after the victim; still runs
  sim.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.EventsProcessed(), 2);
}

TEST(TimerWheelTest, CancelOneTickBeforeExpiry) {
  Simulator sim;
  int ran = 0;
  TimerHandle victim = sim.ScheduleAt(10, [&] { ++ran; });
  sim.ScheduleAt(9, [&] { EXPECT_TRUE(sim.Cancel(victim)); });
  sim.Run();
  EXPECT_EQ(ran, 0);
}

TEST(TimerWheelTest, SelfCancelDuringDispatchReturnsFalse) {
  Simulator sim;
  TimerHandle self;
  bool cancel_result = true;
  self = sim.ScheduleAt(10, [&] {
    // The event is already off the wheel while its callback runs;
    // cancelling "itself" must fail rather than corrupt the slab.
    cancel_result = sim.Cancel(self);
  });
  sim.Run();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(sim.EventsProcessed(), 1);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(TimerWheelTest, CancelPendingOverflowEvent) {
  Simulator sim;
  int ran = 0;
  // Parked several levels up; cancellation must unlink it there, long
  // before any cascade would touch it.
  TimerHandle h = sim.ScheduleAt(TimeNs{1} << 40, [&] { ++ran; });
  sim.ScheduleAt(5, [&] { EXPECT_TRUE(sim.Cancel(h)); });
  sim.Run();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sim.Now(), 5);  // the far-future event no longer holds the clock
}

TEST(TimerWheelTest, HandleGenerationSurvivesSlabReuse) {
  Simulator sim;
  int ran = 0;
  TimerHandle first = sim.ScheduleAt(10, [&] { ++ran; });
  ASSERT_TRUE(sim.Cancel(first));
  // The freed slab node is recycled for the next schedule; the stale
  // handle to its previous life must not cancel the new event.
  TimerHandle second = sim.ScheduleAt(20, [&] { ++ran; });
  EXPECT_FALSE(sim.Cancel(first));
  sim.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(second.issued());
}

// Randomized equivalence against a reference engine: a plain
// (time, seq) min-heap dispatching one event at a time, with
// cancellation by id. Any divergence in dispatch order is a
// determinism-contract violation.
TEST(TimerWheelTest, MatchesReferenceHeapUnderRandomWorkload) {
  struct Ref {
    TimeNs time;
    uint64_t seq;
    int id;
    bool operator>(const Ref& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Simulator sim;
    Rng rng(seed, "wheel_vs_heap");
    std::priority_queue<Ref, std::vector<Ref>, std::greater<Ref>> heap;
    std::vector<bool> cancelled;       // reference: by id
    std::vector<TimerHandle> handles;  // wheel: by id
    std::vector<int> wheel_order;
    uint64_t seq = 0;
    const auto schedule = [&](TimeNs t) {
      const int id = static_cast<int>(handles.size());
      heap.push(Ref{t, seq++, id});
      cancelled.push_back(false);
      handles.push_back(
          sim.ScheduleAt(t, [&wheel_order, id] { wheel_order.push_back(id); }));
    };
    // Mixed horizons: collisions in the near wheel, multi-level
    // overflow, and far-future stragglers.
    for (int i = 0; i < 2000; ++i) {
      const uint64_t r = rng.NextBounded(100);
      TimeNs t;
      if (r < 50) {
        t = static_cast<TimeNs>(rng.NextBounded(512));
      } else if (r < 80) {
        t = static_cast<TimeNs>(rng.NextBounded(1u << 20));
      } else {
        t = static_cast<TimeNs>(rng.NextBounded(uint64_t{1} << 44));
      }
      schedule(t);
    }
    // Cancel a random third of them before running.
    for (int i = 0; i < 700; ++i) {
      const auto id = static_cast<size_t>(rng.NextBounded(handles.size()));
      const bool wheel_ok = sim.Cancel(handles[id]);
      EXPECT_EQ(wheel_ok, !cancelled[id]) << "cancel disagreement id=" << id;
      cancelled[id] = true;
    }
    sim.Run();
    std::vector<int> ref_order;
    while (!heap.empty()) {
      const Ref top = heap.top();
      heap.pop();
      if (!cancelled[static_cast<size_t>(top.id)]) ref_order.push_back(top.id);
    }
    EXPECT_EQ(wheel_order, ref_order) << "seed=" << seed;
  }
}

// Events dispatched from callbacks keep the contract too: a chain that
// schedules across cascade boundaries from inside the run loop.
TEST(TimerWheelTest, CallbackSchedulingAcrossBoundariesStaysOrdered) {
  Simulator sim;
  std::vector<TimeNs> fire_times;
  std::function<void()> hop = [&] {
    fire_times.push_back(sim.Now());
    if (fire_times.size() < 40) {
      // Alternate short and level-crossing hops.
      const TimeNs delta =
          (fire_times.size() % 2 == 0) ? 7 : (TimeNs{1} << 13) - 3;
      sim.ScheduleAfter(delta, hop);
    }
  };
  sim.ScheduleAt(0, hop);
  sim.Run();
  ASSERT_EQ(fire_times.size(), 40u);
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
  EXPECT_EQ(sim.Now(), fire_times.back());
}

}  // namespace
}  // namespace reflex::sim
