#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace reflex::sim {
namespace {

using namespace reflex::sim::literals;

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  TimeNs seen = -1;
  sim.ScheduleAt(1234, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 1234);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimeNs seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.ScheduleAfter(10, chain);
  };
  sim.ScheduleAt(0, chain);
  sim.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.Now(), 90);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(10, [&] { ++ran; });
  sim.ScheduleAt(20, [&] { ++ran; });
  sim.ScheduleAt(30, [&] { ++ran; });
  int64_t n = sim.RunUntil(20);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.RunUntil(100);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(10, [&] {
    ++ran;
    sim.Stop();
  });
  sim.ScheduleAt(20, [&] { ++ran; });
  sim.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulatorTest, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAt(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.EventsProcessed(), 7);
}

TEST(SimulatorTest, TimeLiteralsConvert) {
  EXPECT_EQ(5_us, 5000);
  EXPECT_EQ(2_ms, 2000000);
  EXPECT_EQ(1_s, 1000000000);
  EXPECT_EQ(Micros(1.5), 1500);
  EXPECT_DOUBLE_EQ(ToMicros(1500), 1.5);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
}

// Regression (historical bug): Run()/RunUntil() used to clear stopped_
// at entry, so a Stop() issued outside the loop -- e.g. from the last
// callback of a RunUntil slice, after the loop had already returned --
// was silently lost and the next Run() would plough on.
TEST(SimulatorTest, StopIsStickyUntilConsumed) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(10, [&] { ++ran; });
  sim.Stop();  // requested while no loop is active
  EXPECT_TRUE(sim.StopRequested());
  sim.Run();  // consumes the stop: must NOT dispatch anything
  EXPECT_EQ(ran, 0);
  EXPECT_FALSE(sim.StopRequested());
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();  // stop consumed; this run proceeds normally
  EXPECT_EQ(ran, 1);
}

TEST(SimulatorTest, StopInsideRunUntilSliceHaltsThatSliceOnly) {
  Simulator sim;
  int ran = 0;
  // A stop requested while the loop is live is consumed by that slice:
  // it halts after the in-flight event and does not leak into the next
  // slice (only a stop issued with no loop active is carried forward).
  sim.ScheduleAt(10, [&] {
    ++ran;
    sim.Stop();
  });
  sim.ScheduleAt(15, [&] { ++ran; });
  sim.ScheduleAt(30, [&] { ++ran; });
  EXPECT_EQ(sim.RunUntil(20), 1);  // halted right after the 10ns event
  EXPECT_EQ(sim.Now(), 10);        // stop path: clock not advanced to 20
  EXPECT_FALSE(sim.StopRequested());
  EXPECT_EQ(sim.RunUntil(40), 2);  // 15ns (stranded) and 30ns both run
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sim.Now(), 40);
}

// Exact post-conditions of the RunUntil stop path (see the RunUntil
// doc comment): Now() stays at the last dispatched event, the return
// value and EventsProcessed() count the dispatched events, and
// PendingEvents() counts exactly the live events left behind --
// including ones with timestamps <= t.
TEST(SimulatorTest, RunUntilStopPathPostConditions) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(10, [&] { ++ran; });
  sim.ScheduleAt(20, [&] {
    ++ran;
    sim.Stop();
  });
  sim.ScheduleAt(25, [&] { ++ran; });  // <= t, stranded by the stop
  sim.ScheduleAt(50, [&] { ++ran; });
  const int64_t before = sim.EventsProcessed();
  EXPECT_EQ(sim.RunUntil(30), 2);
  EXPECT_EQ(sim.Now(), 20);  // NOT advanced to 30
  EXPECT_EQ(sim.EventsProcessed() - before, 2);
  EXPECT_EQ(sim.PendingEvents(), 2u);
  EXPECT_FALSE(sim.StopRequested());
  // The stranded event is not lost: the next slice picks it up.
  EXPECT_EQ(sim.RunUntil(30), 1);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, StopRequestedBeforeRunUntilReturnsZeroAndKeepsNow) {
  Simulator sim;
  sim.ScheduleAt(10, [] {});
  sim.Stop();
  EXPECT_EQ(sim.RunUntil(100), 0);
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

// Pop-ordering under a randomized schedule: the engine must dispatch
// in ascending (time, seq) order whatever the insertion order. Run
// under ASan/UBSan this also covers the old const_cast move-from-top()
// UB path's replacement.
TEST(SimulatorTest, RandomizedScheduleDispatchesInTimeSeqOrder) {
  Simulator sim;
  Rng rng(42, "pop_order");
  struct Rec {
    TimeNs time;
    uint64_t seq;
  };
  std::vector<Rec> scheduled;
  std::vector<Rec> dispatched;
  for (uint64_t seq = 0; seq < 5000; ++seq) {
    // Heavy collision range so same-timestamp FIFO is exercised.
    const TimeNs t = static_cast<TimeNs>(rng.NextBounded(700));
    scheduled.push_back({t, seq});
    sim.ScheduleAt(t, [&dispatched, t, seq] {
      dispatched.push_back({t, seq});
    });
  }
  sim.Run();
  std::sort(scheduled.begin(), scheduled.end(), [](const Rec& a,
                                                   const Rec& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  });
  ASSERT_EQ(dispatched.size(), scheduled.size());
  for (size_t i = 0; i < scheduled.size(); ++i) {
    EXPECT_EQ(dispatched[i].time, scheduled[i].time) << "at " << i;
    EXPECT_EQ(dispatched[i].seq, scheduled[i].seq) << "at " << i;
  }
}

TEST(SimulatorTest, CancelPreventsDispatchAndIsIdempotent) {
  Simulator sim;
  int ran = 0;
  TimerHandle h = sim.ScheduleAt(10, [&] { ++ran; });
  EXPECT_TRUE(h.issued());
  EXPECT_EQ(sim.PendingEvents(), 1u);
  EXPECT_TRUE(sim.Cancel(h));
  EXPECT_FALSE(h.issued());  // handle reset by Cancel
  EXPECT_EQ(sim.PendingEvents(), 0u);  // eager: no dead event remains
  EXPECT_FALSE(sim.Cancel(h));  // second cancel is a safe no-op
  sim.Run();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sim.EventsProcessed(), 0);
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  int ran = 0;
  TimerHandle h = sim.ScheduleAt(10, [&] { ++ran; });
  sim.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(sim.Cancel(h));
  EXPECT_EQ(ran, 1);
}

TEST(SimulatorTest, CancelDefaultHandleIsNoop) {
  Simulator sim;
  TimerHandle h;
  EXPECT_FALSE(h.issued());
  EXPECT_FALSE(sim.Cancel(h));
}

TEST(SimulatorTest, PeakPendingEventsTracksHighWater) {
  Simulator sim;
  for (int i = 0; i < 32; ++i) sim.ScheduleAt(i, [] {});
  EXPECT_EQ(sim.PeakPendingEvents(), 32u);
  sim.Run();
  EXPECT_EQ(sim.PendingEvents(), 0u);
  EXPECT_EQ(sim.PeakPendingEvents(), 32u);
}

TEST(SimulatorDeathTest, SchedulingInThePastPanics) {
  Simulator sim;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAt(50, [] {});
  });
  EXPECT_DEATH(sim.Run(), "scheduled in the past");
}

}  // namespace
}  // namespace reflex::sim
