#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/time.h"

namespace reflex::sim {
namespace {

using namespace reflex::sim::literals;

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NowAdvancesToEventTime) {
  Simulator sim;
  TimeNs seen = -1;
  sim.ScheduleAt(1234, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 1234);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimeNs seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.ScheduleAfter(10, chain);
  };
  sim.ScheduleAt(0, chain);
  sim.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.Now(), 90);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(10, [&] { ++ran; });
  sim.ScheduleAt(20, [&] { ++ran; });
  sim.ScheduleAt(30, [&] { ++ran; });
  int64_t n = sim.RunUntil(20);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.RunUntil(100);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(10, [&] {
    ++ran;
    sim.Stop();
  });
  sim.ScheduleAt(20, [&] { ++ran; });
  sim.Run();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulatorTest, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAt(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.EventsProcessed(), 7);
}

TEST(SimulatorTest, TimeLiteralsConvert) {
  EXPECT_EQ(5_us, 5000);
  EXPECT_EQ(2_ms, 2000000);
  EXPECT_EQ(1_s, 1000000000);
  EXPECT_EQ(Micros(1.5), 1500);
  EXPECT_DOUBLE_EQ(ToMicros(1500), 1.5);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
}

TEST(SimulatorDeathTest, SchedulingInThePastPanics) {
  Simulator sim;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAt(50, [] {});
  });
  EXPECT_DEATH(sim.Run(), "scheduled in the past");
}

}  // namespace
}  // namespace reflex::sim
