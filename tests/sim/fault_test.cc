#include "sim/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"

namespace reflex::sim {
namespace {

TEST(FaultPlanTest, DisabledPlanNeverFires) {
  Simulator sim;
  FaultPlan plan(sim, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(plan.Roll(FaultKind::kFlashReadError));
    EXPECT_FALSE(plan.Roll(FaultKind::kNetDrop, 3));
  }
  EXPECT_EQ(plan.total_injected(), 0);
}

TEST(FaultPlanTest, ProbabilityOneAlwaysFires) {
  Simulator sim;
  FaultPlan plan(sim, 7);
  plan.SetProbability(FaultKind::kNetDrop, 1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan.Roll(FaultKind::kNetDrop));
  }
  EXPECT_EQ(plan.injected(FaultKind::kNetDrop), 100);
  EXPECT_EQ(plan.injected(FaultKind::kNetReset), 0);
}

TEST(FaultPlanTest, FractionalProbabilityHitsExpectedRate) {
  Simulator sim;
  FaultPlan plan(sim, 7);
  plan.SetProbability(FaultKind::kFlashReadError, 0.25);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (plan.Roll(FaultKind::kFlashReadError)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(FaultPlanTest, PerIdOverrideBeatsKindWide) {
  Simulator sim;
  FaultPlan plan(sim, 7);
  plan.SetProbability(FaultKind::kFlashReadError, 1.0);
  plan.SetProbability(FaultKind::kFlashReadError, /*id=*/4, 0.0);
  EXPECT_TRUE(plan.Roll(FaultKind::kFlashReadError, 3));
  EXPECT_FALSE(plan.Roll(FaultKind::kFlashReadError, 4));
  EXPECT_DOUBLE_EQ(plan.probability(FaultKind::kFlashReadError, 4), 0.0);
  EXPECT_DOUBLE_EQ(plan.probability(FaultKind::kFlashReadError, 5), 1.0);
}

TEST(FaultPlanTest, DeterministicAcrossRuns) {
  std::vector<bool> first;
  for (int run = 0; run < 2; ++run) {
    Simulator sim;
    FaultPlan plan(sim, 99);
    plan.SetProbability(FaultKind::kNetDrop, 0.3);
    std::vector<bool> outcomes;
    for (int i = 0; i < 500; ++i) {
      outcomes.push_back(plan.Roll(FaultKind::kNetDrop));
    }
    if (run == 0) {
      first = outcomes;
    } else {
      EXPECT_EQ(first, outcomes);
    }
  }
}

TEST(FaultPlanTest, WindowActivatesAndClears) {
  Simulator sim;
  FaultPlan plan(sim, 7);
  plan.ScheduleWindow(FaultKind::kFlashBrownout, Micros(10), Micros(20));
  EXPECT_FALSE(plan.WindowActive(FaultKind::kFlashBrownout));
  sim.RunUntil(Micros(15));
  EXPECT_TRUE(plan.WindowActive(FaultKind::kFlashBrownout));
  // Inside a window Roll always fires, regardless of probability.
  EXPECT_TRUE(plan.Roll(FaultKind::kFlashBrownout));
  sim.RunUntil(Micros(40));
  EXPECT_FALSE(plan.WindowActive(FaultKind::kFlashBrownout));
  EXPECT_FALSE(plan.Roll(FaultKind::kFlashBrownout));
}

TEST(FaultPlanTest, WildcardWindowCoversAllIds) {
  Simulator sim;
  FaultPlan plan(sim, 7);
  plan.ScheduleWindow(FaultKind::kNetLinkFlap, Micros(5), Micros(10));
  sim.RunUntil(Micros(7));
  EXPECT_TRUE(plan.WindowActive(FaultKind::kNetLinkFlap, 0));
  EXPECT_TRUE(plan.WindowActive(FaultKind::kNetLinkFlap, 42));
  EXPECT_TRUE(plan.WindowActive(FaultKind::kNetLinkFlap));
}

TEST(FaultPlanTest, ScopedWindowCoversOnlyItsId) {
  Simulator sim;
  FaultPlan plan(sim, 7);
  plan.ScheduleWindow(FaultKind::kFlashReadError, Micros(5), Micros(10),
                      /*id=*/2);
  sim.RunUntil(Micros(7));
  EXPECT_TRUE(plan.WindowActive(FaultKind::kFlashReadError, 2));
  EXPECT_FALSE(plan.WindowActive(FaultKind::kFlashReadError, 3));
  EXPECT_FALSE(plan.WindowActive(FaultKind::kFlashReadError));
}

TEST(FaultPlanTest, NestedWindowsStayActiveUntilAllClose) {
  Simulator sim;
  FaultPlan plan(sim, 7);
  plan.ScheduleWindow(FaultKind::kFlashBrownout, Micros(10), Micros(30));
  plan.ScheduleWindow(FaultKind::kFlashBrownout, Micros(20), Micros(30));
  sim.RunUntil(Micros(45));
  EXPECT_TRUE(plan.WindowActive(FaultKind::kFlashBrownout))
      << "second window still open after the first closed";
  sim.RunUntil(Micros(55));
  EXPECT_FALSE(plan.WindowActive(FaultKind::kFlashBrownout));
}

TEST(FaultPlanTest, ListenersSeeEveryTransition) {
  Simulator sim;
  FaultPlan plan(sim, 7);
  int depth = 0;
  int transitions = 0;
  plan.AddWindowListener(
      [&](FaultKind kind, uint64_t id, bool active) {
        EXPECT_EQ(kind, FaultKind::kNetLinkFlap);
        EXPECT_EQ(id, uint64_t{1});
        depth += active ? 1 : -1;
        ++transitions;
      });
  plan.ScheduleWindow(FaultKind::kNetLinkFlap, Micros(10), Micros(10), 1);
  plan.ScheduleWindow(FaultKind::kNetLinkFlap, Micros(15), Micros(10), 1);
  sim.RunUntil(Micros(100));
  EXPECT_EQ(transitions, 4);
  EXPECT_EQ(depth, 0);
}

TEST(FaultPlanTest, KindNamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kFlashReadError),
               "flash_read_error");
  EXPECT_STREQ(FaultKindName(FaultKind::kServerOutOfResources),
               "server_out_of_resources");
}

}  // namespace
}  // namespace reflex::sim
