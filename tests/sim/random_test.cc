#include "sim/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace reflex::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NamedStreamsAreIndependent) {
  Rng a(7, "flash");
  Rng b(7, "network");
  EXPECT_NE(a.Next(), b.Next());
  // Same (seed, name) pair reproduces.
  Rng c(7, "flash");
  Rng d(7, "flash");
  EXPECT_EQ(c.Next(), d.Next());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(5);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.NextBounded(10)];
  for (int count : seen) {
    EXPECT_GT(count, 800);  // expected 1000 each
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(RngTest, LognormalMedianConverges) {
  Rng rng(19);
  const int n = 100001;
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) v[i] = rng.NextLognormal(100.0, 0.3);
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  EXPECT_NEAR(v[n / 2], 100.0, 2.5);
}

TEST(RngTest, LognormalZeroSigmaIsExact) {
  Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(rng.NextLognormal(140.0, 0.0), 140.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.8);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.8, 0.01);
}

TEST(RngTest, ZipfStaysInRangeAndSkews) {
  Rng rng(37);
  const uint64_t n = 1000;
  int64_t low_ranks = 0;
  for (int i = 0; i < 50000; ++i) {
    uint64_t k = rng.NextZipf(n, 0.99);
    ASSERT_LT(k, n);
    if (k < 10) ++low_ranks;
  }
  // Zipf(0.99): the top 10 of 1000 ranks attract a large share.
  EXPECT_GT(low_ranks, 15000);
}

TEST(RngTest, ZipfSmallN) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.NextZipf(1, 1.2), 0u);
  }
}

}  // namespace
}  // namespace reflex::sim
