#include "sim/stats.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace reflex::sim {
namespace {

TEST(RateMeterTest, ComputesPerSecondRate) {
  RateMeter meter(0);
  for (int i = 0; i < 500; ++i) meter.Add();
  EXPECT_DOUBLE_EQ(meter.PerSecond(Millis(500)), 1000.0);
  EXPECT_DOUBLE_EQ(meter.Count(), 500.0);
}

TEST(RateMeterTest, WeightedAdds) {
  RateMeter meter(0);
  meter.Add(2.5);
  meter.Add(7.5);
  EXPECT_DOUBLE_EQ(meter.PerSecond(kSecond), 10.0);
}

TEST(RateMeterTest, ZeroWindowIsZero) {
  RateMeter meter(1000);
  meter.Add(5);
  EXPECT_DOUBLE_EQ(meter.PerSecond(1000), 0.0);
}

TEST(RateMeterTest, ResetStartsNewWindow) {
  RateMeter meter(0);
  meter.Add(100);
  meter.Reset(kSecond);
  meter.Add(10);
  EXPECT_DOUBLE_EQ(meter.PerSecond(2 * kSecond), 10.0);
}

TEST(TimeWeightedMeanTest, ConstantSignal) {
  TimeWeightedMean m(0);
  m.Set(0, 4.0);
  EXPECT_DOUBLE_EQ(m.Mean(kSecond), 4.0);
  EXPECT_DOUBLE_EQ(m.Current(), 4.0);
}

TEST(TimeWeightedMeanTest, StepSignalWeightedByDuration) {
  TimeWeightedMean m(0);
  m.Set(0, 0.0);
  m.Set(Millis(750), 4.0);  // 0 for 75% of the window, 4 for 25%
  EXPECT_DOUBLE_EQ(m.Mean(kSecond), 1.0);
}

TEST(TimeWeightedMeanTest, ResetClearsHistory) {
  TimeWeightedMean m(0);
  m.Set(0, 100.0);
  m.Reset(kSecond);
  m.Set(kSecond, 2.0);
  EXPECT_DOUBLE_EQ(m.Mean(2 * kSecond), 2.0);
}

}  // namespace
}  // namespace reflex::sim
