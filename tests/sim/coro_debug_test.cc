// Regression tests for the REFLEX_CORO_DEBUG frame registry: the
// dynamic half of the coroutine ownership rulebook (DESIGN.md section
// 18). Every test skips in a non-debug build -- the registry hooks
// compile away -- and the death tests prove the two assertions fire:
// ~Simulator() on a leaked frame, and Semaphore::Release on a
// destroyed waiter. The leaked-frame case is exactly the class
// ASan/LSan cannot catch: the handle is stored, so the frame is
// reachable, yet nothing will ever resume or free it.

#include "sim/coro_debug.h"

#include <gtest/gtest.h>

#include <coroutine>

#include "sim/simulator.h"
#include "sim/task.h"

namespace reflex::sim {
namespace {

Task CompleteAfterDelay(Simulator* sim, int* done) {
  co_await Delay(*sim, 100);
  *done = 1;
}

TEST(CoroDebugTest, CountersTrackFrameLifetimes) {
  if (!CoroDebugEnabled()) {
    GTEST_SKIP() << "built without REFLEX_CORO_DEBUG";
  }
  const CoroDebugStats before = CoroDebugGetStats();
  {
    Simulator sim;
    int done = 0;
    CompleteAfterDelay(&sim, &done);
    const CoroDebugStats mid = CoroDebugGetStats();
    EXPECT_EQ(mid.created, before.created + 1);
    EXPECT_EQ(mid.live, before.live + 1);  // parked on the Delay
    sim.Run();
    EXPECT_EQ(done, 1);
  }
  const CoroDebugStats after = CoroDebugGetStats();
  EXPECT_EQ(after.created, before.created + 1);
  EXPECT_EQ(after.destroyed, before.destroyed + 1);
  EXPECT_EQ(after.live, before.live);
}

Task ParkForever(Future<Unit> never, std::coroutine_handle<>* slot) {
  co_await SelfHandle(slot);
  co_await never;  // the promise is never set; the frame parks here
  *slot = nullptr;
}

TEST(CoroDebugTest, OwnerDestroyingParkedFrameIsClean) {
  if (!CoroDebugEnabled()) {
    GTEST_SKIP() << "built without REFLEX_CORO_DEBUG";
  }
  const CoroDebugStats before = CoroDebugGetStats();
  {
    Simulator sim;
    Promise<Unit> promise(sim);
    std::coroutine_handle<> slot;
    ParkForever(promise.GetFuture(), &slot);
    sim.Run();
    ASSERT_TRUE(slot);
    EXPECT_TRUE(CoroDebugIsLive(slot.address()));
    // The ownership rule: the owner destroys the parked frame before
    // the simulator dies.
    slot.destroy();
    EXPECT_FALSE(CoroDebugIsLive(slot.address()));
  }
  const CoroDebugStats after = CoroDebugGetStats();
  EXPECT_EQ(after.live, before.live);
}

TEST(CoroDebugDeathTest, LeakedFrameTripsTeardownAssert) {
  if (!CoroDebugEnabled()) {
    GTEST_SKIP() << "built without REFLEX_CORO_DEBUG";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The handle stays stored in `slot` until after ~Simulator, so the
  // frame is reachable the whole time -- LSan would stay silent -- but
  // the registry still counts it as live and the teardown assert
  // fires, naming the creation site.
  EXPECT_DEATH(
      {
        std::coroutine_handle<> slot;
        {
          Simulator sim;
          Promise<Unit> promise(sim);
          ParkForever(promise.GetFuture(), &slot);
          sim.Run();
        }  // ~Simulator with the frame still parked
        if (slot) slot.destroy();
      },
      "still alive at Simulator teardown");
}

Task AcquireOnce(Semaphore* sem, std::coroutine_handle<>* slot, int* got) {
  co_await SelfHandle(slot);
  co_await sem->Acquire();
  *slot = nullptr;
  *got = 1;
}

TEST(CoroDebugDeathTest, SemaphoreReleaseOfDestroyedWaiterPanics) {
  if (!CoroDebugEnabled()) {
    GTEST_SKIP() << "built without REFLEX_CORO_DEBUG";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The waiter parks in the semaphore's FIFO, its owner destroys the
  // frame (legal only once it has left every wait queue -- this is the
  // violation), then Release() schedules a resume of freed memory.
  // Under REFLEX_CORO_DEBUG the resume path catches it; without the
  // registry this would be silent heap corruption.
  EXPECT_DEATH(
      {
        Simulator sim;
        Semaphore sem(sim, 0);
        std::coroutine_handle<> slot;
        int got = 0;
        AcquireOnce(&sem, &slot, &got);
        sim.Run();
        slot.destroy();  // owner tears the waiter down while queued
        slot = nullptr;
        sem.Release();
        sim.Run();
      },
      "resume a destroyed coroutine frame");
}

TEST(CoroDebugTest, SemaphoreReleaseOfLiveWaiterResumes) {
  Simulator sim;
  Semaphore sem(sim, 0);
  std::coroutine_handle<> slot;
  int got = 0;
  AcquireOnce(&sem, &slot, &got);
  sim.Run();
  EXPECT_EQ(got, 0);
  sem.Release();
  sim.Run();
  EXPECT_EQ(got, 1);
  EXPECT_FALSE(slot);  // coroutine cleared its slot before returning
}

}  // namespace
}  // namespace reflex::sim
