// Property tests over the Flash device model (parameterized sweeps).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "sim/simulator.h"

namespace reflex::flash {
namespace {

using sim::Millis;
using sim::Simulator;

CalibrationConfig QuickConfig() {
  CalibrationConfig cfg;
  cfg.measure_duration = Millis(120);
  cfg.warmup_duration = Millis(40);
  return cfg;
}

// ---------------------------------------------------------------------
// Property: the weighted-token capacity of a device is (approximately)
// workload independent -- the collapse that justifies the paper's
// linear cost model. For every (read ratio, request size), saturation
// IOPS x tokens/IO must land within a band of the device's token
// capacity.
// ---------------------------------------------------------------------

using CollapseParam = std::tuple<double, uint32_t>;  // read ratio, bytes

class TokenCollapseTest : public ::testing::TestWithParam<CollapseParam> {};

TEST_P(TokenCollapseTest, WeightedSaturationIsWorkloadIndependent) {
  const auto [read_ratio, bytes] = GetParam();
  Simulator sim;
  DeviceProfile profile = DeviceProfile::DeviceA();
  FlashDevice device(sim, profile, 7);

  const double k = MeasureSaturationIops(sim, device, read_ratio, bytes,
                                         QuickConfig());
  const double pages = static_cast<double>((bytes + 4095) / 4096);
  const double read_cost = read_ratio >= 1.0 ? 0.5 : 1.0;
  const double tokens_per_io =
      pages * (read_ratio * read_cost + (1.0 - read_ratio) * 10.0);
  const double token_capacity = k * tokens_per_io;

  // Ideal capacity: num_dies / mixed service quantum.
  const double ideal = profile.MixedTokenCapacityPerSec();
  EXPECT_GT(token_capacity, 0.78 * ideal)
      << "ratio=" << read_ratio << " bytes=" << bytes;
  EXPECT_LT(token_capacity, 1.15 * ideal)
      << "ratio=" << read_ratio << " bytes=" << bytes;
}

INSTANTIATE_TEST_SUITE_P(
    MixAndSizeSweep, TokenCollapseTest,
    ::testing::Values(CollapseParam{1.00, 4096}, CollapseParam{1.00, 1024},
                      CollapseParam{1.00, 32768}, CollapseParam{0.99, 4096},
                      CollapseParam{0.95, 4096}, CollapseParam{0.90, 4096},
                      CollapseParam{0.75, 4096}, CollapseParam{0.50, 4096},
                      CollapseParam{0.90, 32768},
                      CollapseParam{0.90, 1024}));

// ---------------------------------------------------------------------
// Property: p95 read latency is (weakly) monotone in offered load for
// any mix.
// ---------------------------------------------------------------------

class LatencyMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(LatencyMonotoneTest, TailRisesWithLoad) {
  const double ratio = GetParam();
  Simulator sim;
  FlashDevice device(sim, DeviceProfile::DeviceA(), 11);
  CalibrationConfig cfg = QuickConfig();
  const double k = MeasureSaturationIops(sim, device, ratio, 4096, cfg);
  sim::TimeNs low =
      MeasureOpenLoopPoint(sim, device, 0.2 * k, ratio, 4096, cfg).read_p95;
  sim::TimeNs mid =
      MeasureOpenLoopPoint(sim, device, 0.6 * k, ratio, 4096, cfg).read_p95;
  sim::TimeNs high =
      MeasureOpenLoopPoint(sim, device, 0.95 * k, ratio, 4096, cfg)
          .read_p95;
  EXPECT_LE(low, mid + Millis(0) + sim::Micros(50));  // tiny noise slack
  EXPECT_LT(mid, high);
  EXPECT_GT(high, 2 * low) << "tail must blow up near saturation";
}

INSTANTIATE_TEST_SUITE_P(RatioSweep, LatencyMonotoneTest,
                         ::testing::Values(1.0, 0.99, 0.9, 0.75, 0.5));

// ---------------------------------------------------------------------
// Property: every device profile's calibration recovers the profile's
// intrinsic write cost and read-only discount.
// ---------------------------------------------------------------------

class DeviceCalibrationTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(DeviceCalibrationTest, FitRecoversProfileConstants) {
  Simulator sim;
  DeviceProfile profile = DeviceProfile::ByName(GetParam());
  FlashDevice device(sim, profile, 13);
  CalibrationConfig cfg = QuickConfig();
  cfg.mixed_read_ratios = {0.5, 0.9, 0.99};
  CalibrationResult r = Calibrate(sim, device, cfg);
  EXPECT_NEAR(r.write_cost, profile.write_cost, profile.write_cost * 0.2);
  const double expected_discount =
      static_cast<double>(profile.read_service_readonly) /
      static_cast<double>(profile.read_service_mixed);
  EXPECT_NEAR(r.read_cost_readonly, expected_discount,
              expected_discount * 0.2);
  // The fitted capacity approximates dies / mixed quantum.
  EXPECT_NEAR(r.token_capacity_per_sec, profile.MixedTokenCapacityPerSec(),
              profile.MixedTokenCapacityPerSec() * 0.15);
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceCalibrationTest,
                         ::testing::Values("A", "B", "C"));

// ---------------------------------------------------------------------
// Property: data written is read back identically for arbitrary
// (offset, length) combinations.
// ---------------------------------------------------------------------

using IoShape = std::tuple<uint64_t, uint32_t>;  // lba, sectors

class DataIntegrityTest : public ::testing::TestWithParam<IoShape> {};

TEST_P(DataIntegrityTest, RoundTrip) {
  const auto [lba, sectors] = GetParam();
  Simulator sim;
  FlashDevice device(sim, DeviceProfile::DeviceA(), 17);
  QueuePair* qp = device.AllocQueuePair();
  std::vector<uint8_t> out(sectors * 512ULL);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>((lba + i) * 131);
  }
  FlashCommand w{FlashOp::kWrite, lba, sectors, out.data(), 0};
  ASSERT_TRUE(device.Submit(qp, w, nullptr));
  sim.Run();
  std::vector<uint8_t> in(out.size(), 0);
  FlashCommand r{FlashOp::kRead, lba, sectors, in.data(), 0};
  ASSERT_TRUE(device.Submit(qp, r, nullptr));
  sim.Run();
  EXPECT_EQ(in, out);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DataIntegrityTest,
    ::testing::Values(IoShape{0, 1}, IoShape{7, 3}, IoShape{8, 8},
                      IoShape{13, 16}, IoShape{4096, 64},
                      IoShape{999999, 128}, IoShape{5, 255}));

}  // namespace
}  // namespace reflex::flash
