// Focused tests for device-mode dynamics: read-only detection, GC
// stalls, die utilization, and the read-only throughput advantage the
// cost model depends on.

#include <gtest/gtest.h>

#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "sim/simulator.h"

namespace reflex::flash {
namespace {

using sim::Micros;
using sim::Millis;
using sim::Simulator;

TEST(FlashModesTest, ReadOnlyModeTracksWriteActivity) {
  Simulator sim;
  DeviceProfile p = DeviceProfile::DeviceA();
  p.gc_prob_per_flush_chunk = 0.0;
  FlashDevice dev(sim, p, 1);
  QueuePair* qp = dev.AllocQueuePair();
  EXPECT_TRUE(dev.InReadOnlyMode()) << "fresh device is read-only";

  FlashCommand w;
  w.op = FlashOp::kWrite;
  w.sectors = 8;
  ASSERT_TRUE(dev.Submit(qp, w, nullptr));
  EXPECT_FALSE(dev.InReadOnlyMode()) << "write activity ends the mode";
  sim.Run();
  sim.RunUntil(sim.Now() + p.readonly_window + Millis(1));
  EXPECT_TRUE(dev.InReadOnlyMode()) << "quiet window restores it";
}

TEST(FlashModesTest, GcStallsAccumulateUnderWrites) {
  Simulator sim;
  DeviceProfile p = DeviceProfile::DeviceA();
  p.gc_prob_per_flush_chunk = 0.05;  // exaggerate for the test
  FlashDevice dev(sim, p, 3);
  QueuePair* qp = dev.AllocQueuePair();
  FlashCommand w;
  w.op = FlashOp::kWrite;
  w.sectors = 8;
  for (int i = 0; i < 300; ++i) {
    w.lba = static_cast<uint64_t>(i) * 8;
    ASSERT_TRUE(dev.Submit(qp, w, nullptr));
    sim.RunUntil(sim.Now() + Micros(50));
  }
  sim.Run();
  // 300 writes x 10 chunks x 5% => ~150 expected stalls.
  EXPECT_GT(dev.stats().gc_stalls, 60);
  EXPECT_LT(dev.stats().gc_stalls, 300);
}

TEST(FlashModesTest, DieUtilizationReflectsLoad) {
  Simulator sim;
  FlashDevice dev(sim, DeviceProfile::DeviceA(), 5);
  QueuePair* qp = dev.AllocQueuePair();
  EXPECT_DOUBLE_EQ(dev.DieUtilization(), 0.0);
  // Saturate every die with a burst of reads.
  FlashCommand r;
  r.op = FlashOp::kRead;
  r.sectors = 8;
  for (int i = 0; i < 500; ++i) {
    r.lba = static_cast<uint64_t>(i) * 8;
    ASSERT_TRUE(dev.Submit(qp, r, nullptr));
  }
  EXPECT_GT(dev.DieUtilization(), 0.9);
  sim.Run();
  EXPECT_DOUBLE_EQ(dev.DieUtilization(), 0.0);
}

TEST(FlashModesTest, ReadOnlyThroughputAdvantageIsTheDiscount) {
  // Device A reads cost 0.5 tokens when read-only: saturation IOPS
  // must be ~2x the hypothetical mixed-read rate.
  Simulator sim;
  DeviceProfile p = DeviceProfile::DeviceA();
  FlashDevice dev(sim, p, 7);
  CalibrationConfig cfg;
  cfg.measure_duration = Millis(120);
  cfg.warmup_duration = Millis(40);
  const double k100 = MeasureSaturationIops(sim, dev, 1.0, 4096, cfg);
  const double mixed_rate = p.MixedTokenCapacityPerSec();
  EXPECT_NEAR(k100, 2.0 * mixed_rate, 0.25 * 2.0 * mixed_rate);
}

TEST(FlashModesTest, WritesDoNotCareAboutReadOnlyPricing) {
  // Back-to-back writes always pay the full flush cost; the device's
  // write-only saturation is capacity / write_cost.
  Simulator sim;
  DeviceProfile p = DeviceProfile::DeviceA();
  FlashDevice dev(sim, p, 9);
  CalibrationConfig cfg;
  cfg.measure_duration = Millis(150);
  cfg.warmup_duration = Millis(50);
  const double k0 = MeasureSaturationIops(sim, dev, 0.0, 4096, cfg);
  const double expected = p.MixedTokenCapacityPerSec() / p.write_cost;
  EXPECT_NEAR(k0, expected, expected * 0.2);
}

}  // namespace
}  // namespace reflex::flash
