#include "flash/flash_device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "flash/device_profile.h"
#include "sim/simulator.h"

namespace reflex::flash {
namespace {

using sim::Micros;
using sim::Millis;
using sim::Simulator;
using sim::TimeNs;

DeviceProfile QuietProfile() {
  DeviceProfile p = DeviceProfile::DeviceA();
  p.service_sigma = 0.0;
  p.write_buffer_sigma = 0.0;
  p.gc_prob_per_flush_chunk = 0.0;
  return p;
}

class FlashDeviceTest : public ::testing::Test {
 protected:
  Simulator sim_;
};

TEST_F(FlashDeviceTest, QueuePairAllocationLimit) {
  DeviceProfile p = QuietProfile();
  p.num_hw_queues = 3;
  FlashDevice dev(sim_, p, 1);
  QueuePair* a = dev.AllocQueuePair();
  QueuePair* b = dev.AllocQueuePair();
  QueuePair* c = dev.AllocQueuePair();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(dev.AllocQueuePair(), nullptr) << "limit is 3 queues";
  dev.FreeQueuePair(b);
  QueuePair* d = dev.AllocQueuePair();
  EXPECT_NE(d, nullptr) << "freed slot must be reusable";
}

TEST_F(FlashDeviceTest, UnloadedReadLatencyIsReadOnlyServicePlusOverhead) {
  DeviceProfile p = QuietProfile();
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();
  FlashCommand cmd;
  cmd.op = FlashOp::kRead;
  cmd.lba = 0;
  cmd.sectors = 8;  // 4KB
  TimeNs latency = -1;
  ASSERT_TRUE(dev.Submit(qp, cmd, [&](const FlashCompletion& c) {
    latency = c.Latency();
  }));
  sim_.Run();
  // Device idle => read-only mode: one die service quantum plus the
  // pipelined controller latency and fixed overhead.
  EXPECT_EQ(latency, p.read_service_readonly + p.read_pipeline_latency +
                         p.fixed_op_overhead);
}

TEST_F(FlashDeviceTest, UnloadedWriteLatencyIsBufferInsert) {
  DeviceProfile p = QuietProfile();
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();
  FlashCommand cmd;
  cmd.op = FlashOp::kWrite;
  cmd.sectors = 8;
  TimeNs latency = -1;
  ASSERT_TRUE(dev.Submit(qp, cmd, [&](const FlashCompletion& c) {
    latency = c.Latency();
  }));
  sim_.Run();
  // Writes ack from the DRAM buffer: ~10us, far below read latency.
  EXPECT_LT(latency, Micros(20));
  EXPECT_GE(latency, p.write_buffer_latency);
}

TEST_F(FlashDeviceTest, MixedModeReadsAreSlower) {
  DeviceProfile p = QuietProfile();
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();

  // A write puts the device in mixed mode.
  FlashCommand w;
  w.op = FlashOp::kWrite;
  w.sectors = 8;
  ASSERT_TRUE(dev.Submit(qp, w, nullptr));
  sim_.Run();

  // Flush of one write occupies dies; wait for it to drain but stay
  // within the read-only window.
  EXPECT_FALSE(dev.InReadOnlyMode());

  FlashCommand r;
  r.op = FlashOp::kRead;
  r.lba = 8 * 1000;  // a different page/die than the flush target
  r.sectors = 8;
  TimeNs latency = -1;
  ASSERT_TRUE(dev.Submit(qp, r, [&](const FlashCompletion& c) {
    latency = c.Latency();
  }));
  sim_.Run();
  EXPECT_GE(latency, p.read_service_mixed);
}

TEST_F(FlashDeviceTest, ReadOnlyModeRestoredAfterQuietWindow) {
  DeviceProfile p = QuietProfile();
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();
  FlashCommand w;
  w.op = FlashOp::kWrite;
  w.sectors = 8;
  ASSERT_TRUE(dev.Submit(qp, w, nullptr));
  sim_.Run();
  EXPECT_FALSE(dev.InReadOnlyMode());
  sim_.RunUntil(sim_.Now() + p.readonly_window + Millis(2));
  EXPECT_TRUE(dev.InReadOnlyMode());
}

TEST_F(FlashDeviceTest, LargeReadsCostProportionallyMoreDieTime) {
  // A 32KB read touches 8 dies; on an idle device the chunks run in
  // parallel so latency stays near one quantum, but total die
  // occupancy is 8 quanta. We verify via saturation of a small device.
  DeviceProfile p = QuietProfile();
  p.num_dies = 4;
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();
  TimeNs latency = -1;
  FlashCommand r;
  r.op = FlashOp::kRead;
  r.lba = 0;
  r.sectors = 64;  // 32KB = 8 pages on 4 dies => 2 serial quanta
  ASSERT_TRUE(dev.Submit(qp, r, [&](const FlashCompletion& c) {
    latency = c.Latency();
  }));
  sim_.Run();
  EXPECT_EQ(latency, 2 * p.read_service_readonly +
                         p.read_pipeline_latency + p.fixed_op_overhead);
}

TEST_F(FlashDeviceTest, InvalidLbaRejected) {
  DeviceProfile p = QuietProfile();
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();
  FlashCommand bad;
  bad.op = FlashOp::kRead;
  bad.lba = p.capacity_sectors;  // out of range
  bad.sectors = 8;
  EXPECT_FALSE(dev.Submit(qp, bad, nullptr));
  FlashCommand zero;
  zero.sectors = 0;
  EXPECT_FALSE(dev.Submit(qp, zero, nullptr));
}

TEST_F(FlashDeviceTest, QueueDepthEnforced) {
  DeviceProfile p = QuietProfile();
  p.hw_queue_depth = 4;
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();
  FlashCommand r;
  r.op = FlashOp::kRead;
  r.sectors = 8;
  for (int i = 0; i < 4; ++i) {
    r.lba = static_cast<uint64_t>(i) * 8;
    EXPECT_TRUE(dev.Submit(qp, r, nullptr));
  }
  EXPECT_FALSE(dev.Submit(qp, r, nullptr)) << "queue depth 4 exceeded";
  EXPECT_EQ(dev.stats().queue_full_rejections, 1);
  sim_.Run();
  EXPECT_EQ(qp->Outstanding(), 0);
  EXPECT_TRUE(dev.Submit(qp, r, nullptr)) << "queue drains";
  sim_.Run();
}

TEST_F(FlashDeviceTest, DataRoundTrip) {
  DeviceProfile p = QuietProfile();
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();

  std::vector<uint8_t> out(4096);
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<uint8_t>(i);
  FlashCommand w;
  w.op = FlashOp::kWrite;
  w.lba = 800;
  w.sectors = 8;
  w.data = out.data();
  ASSERT_TRUE(dev.Submit(qp, w, nullptr));
  sim_.Run();

  std::vector<uint8_t> in(4096, 0xEE);
  FlashCommand r;
  r.op = FlashOp::kRead;
  r.lba = 800;
  r.sectors = 8;
  r.data = in.data();
  ASSERT_TRUE(dev.Submit(qp, r, nullptr));
  sim_.Run();
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 4096), 0);
}

TEST_F(FlashDeviceTest, UnalignedDataRoundTrip) {
  DeviceProfile p = QuietProfile();
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();

  // Write 3 sectors starting at an offset inside a page.
  std::vector<uint8_t> out(3 * 512, 0xAB);
  FlashCommand w;
  w.op = FlashOp::kWrite;
  w.lba = 6;  // straddles the first/second 4KB page
  w.sectors = 3;
  w.data = out.data();
  ASSERT_TRUE(dev.Submit(qp, w, nullptr));
  sim_.Run();

  std::vector<uint8_t> in(3 * 512, 0);
  FlashCommand r = w;
  r.op = FlashOp::kRead;
  r.data = in.data();
  ASSERT_TRUE(dev.Submit(qp, r, nullptr));
  sim_.Run();
  EXPECT_EQ(in, out);
}

TEST_F(FlashDeviceTest, UnwrittenFlashReadsZero) {
  DeviceProfile p = QuietProfile();
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();
  std::vector<uint8_t> in(4096, 0xFF);
  FlashCommand r;
  r.op = FlashOp::kRead;
  r.lba = 123456;
  r.sectors = 8;
  r.data = in.data();
  ASSERT_TRUE(dev.Submit(qp, r, nullptr));
  sim_.Run();
  for (uint8_t b : in) EXPECT_EQ(b, 0);
}

TEST_F(FlashDeviceTest, WriteBufferBackpressure) {
  DeviceProfile p = QuietProfile();
  p.num_dies = 2;
  p.write_buffer_slots = 2;
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();

  // Flood with writes: each flush costs 10 quanta on 2 dies = 700us.
  std::vector<TimeNs> latencies;
  FlashCommand w;
  w.op = FlashOp::kWrite;
  w.sectors = 8;
  for (int i = 0; i < 8; ++i) {
    w.lba = static_cast<uint64_t>(i) * 8;
    ASSERT_TRUE(dev.Submit(qp, w, [&](const FlashCompletion& c) {
      latencies.push_back(c.Latency());
    }));
  }
  sim_.Run();
  ASSERT_EQ(latencies.size(), 8u);
  // First two writes hit free buffer slots: fast.
  EXPECT_LT(latencies[0], Micros(20));
  EXPECT_LT(latencies[1], Micros(20));
  // Later writes wait for flush drain: much slower.
  EXPECT_GT(latencies.back(), Micros(500));
}

TEST_F(FlashDeviceTest, StatsCountOps) {
  DeviceProfile p = QuietProfile();
  FlashDevice dev(sim_, p, 1);
  QueuePair* qp = dev.AllocQueuePair();
  FlashCommand r;
  r.op = FlashOp::kRead;
  r.sectors = 8;
  FlashCommand w;
  w.op = FlashOp::kWrite;
  w.sectors = 16;
  ASSERT_TRUE(dev.Submit(qp, r, nullptr));
  ASSERT_TRUE(dev.Submit(qp, w, nullptr));
  sim_.Run();
  EXPECT_EQ(dev.stats().reads_completed, 1);
  EXPECT_EQ(dev.stats().writes_completed, 1);
  EXPECT_EQ(dev.stats().read_sectors, 8);
  EXPECT_EQ(dev.stats().write_sectors, 16);
  EXPECT_EQ(dev.read_latency().Count(), 1);
  EXPECT_EQ(dev.write_latency().Count(), 1);
}

TEST_F(FlashDeviceTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    FlashDevice dev(sim, DeviceProfile::DeviceA(), 99);
    QueuePair* qp = dev.AllocQueuePair();
    std::vector<TimeNs> latencies;
    for (int i = 0; i < 200; ++i) {
      FlashCommand cmd;
      cmd.op = (i % 10 == 0) ? FlashOp::kWrite : FlashOp::kRead;
      cmd.lba = static_cast<uint64_t>(i * 37 % 100000) * 8;
      cmd.sectors = 8;
      dev.Submit(qp, cmd, [&](const FlashCompletion& c) {
        latencies.push_back(c.Latency());
      });
    }
    sim.Run();
    return latencies;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace reflex::flash
