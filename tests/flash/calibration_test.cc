#include "flash/calibration.h"

#include <gtest/gtest.h>

#include "flash/flash_device.h"
#include "sim/simulator.h"

namespace reflex::flash {
namespace {

using sim::Micros;
using sim::Millis;
using sim::Simulator;

CalibrationConfig FastConfig() {
  CalibrationConfig cfg;
  cfg.mixed_read_ratios = {0.50, 0.90, 0.99};
  cfg.measure_duration = Millis(150);
  cfg.warmup_duration = Millis(40);
  cfg.curve_fractions = {0.2, 0.5, 0.7, 0.85, 0.95};
  return cfg;
}

TEST(CalibrationTest, RecoversDeviceAWriteCost) {
  Simulator sim;
  FlashDevice dev(sim, DeviceProfile::DeviceA(), 7);
  CalibrationResult r = Calibrate(sim, dev, FastConfig());
  // Device A: C(write) = 10 tokens, C(read, r=100%) = 0.5 tokens.
  EXPECT_NEAR(r.write_cost, 10.0, 1.8);
  EXPECT_NEAR(r.read_cost_readonly, 0.5, 0.1);
  // Capacity ~ 80 dies / 140us = 571K tokens/s.
  EXPECT_NEAR(r.token_capacity_per_sec, 571000.0, 571000.0 * 0.15);
}

TEST(CalibrationTest, RecoversDeviceBWriteCost) {
  Simulator sim;
  FlashDevice dev(sim, DeviceProfile::DeviceB(), 7);
  CalibrationResult r = Calibrate(sim, dev, FastConfig());
  EXPECT_NEAR(r.write_cost, 20.0, 3.5);
  EXPECT_NEAR(r.read_cost_readonly, 1.0, 0.15);
}

TEST(CalibrationTest, RecoversDeviceCWriteCost) {
  Simulator sim;
  FlashDevice dev(sim, DeviceProfile::DeviceC(), 7);
  CalibrationResult r = Calibrate(sim, dev, FastConfig());
  EXPECT_NEAR(r.write_cost, 16.0, 3.0);
  EXPECT_NEAR(r.read_cost_readonly, 0.714, 0.12);
}

TEST(CalibrationTest, LatencyCurveIsMonotoneInLoad) {
  Simulator sim;
  FlashDevice dev(sim, DeviceProfile::DeviceA(), 11);
  CalibrationResult r = Calibrate(sim, dev, FastConfig());
  ASSERT_GE(r.latency_curve.size(), 3u);
  // Tail latency must rise with load (allow tiny noise at low load).
  EXPECT_LT(r.latency_curve.front().read_p95,
            r.latency_curve.back().read_p95);
  for (size_t i = 1; i < r.latency_curve.size(); ++i) {
    EXPECT_GT(r.latency_curve[i].token_rate,
              r.latency_curve[i - 1].token_rate);
  }
}

TEST(CalibrationTest, SloInversionMatchesPaperScenario) {
  // The paper: device A supports 420K tokens/s at a 500us p95 SLO and
  // ~570K tokens/s at 2ms. Verify our calibrated device lands in the
  // same neighbourhood (shape reproduction, +-20%).
  Simulator sim;
  FlashDevice dev(sim, DeviceProfile::DeviceA(), 13);
  CalibrationConfig cfg = FastConfig();
  cfg.curve_fractions = {0.2, 0.4, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98};
  CalibrationResult r = Calibrate(sim, dev, cfg);
  const double rate_500us = r.MaxTokenRateForSlo(Micros(500));
  const double rate_2ms = r.MaxTokenRateForSlo(Millis(2));
  EXPECT_NEAR(rate_500us, 420000.0, 420000.0 * 0.25);
  EXPECT_NEAR(rate_2ms, 570000.0, 570000.0 * 0.25);
  EXPECT_LT(rate_500us, rate_2ms) << "stricter SLO => fewer tokens";
}

TEST(CalibrationTest, MaxTokenRateInterpolation) {
  CalibrationResult r;
  r.latency_curve = {
      {100000.0, 90000.0, Micros(100), Micros(80)},
      {200000.0, 180000.0, Micros(200), Micros(120)},
      {300000.0, 260000.0, Micros(600), Micros(300)},
  };
  // Exactly at a measured point.
  EXPECT_NEAR(r.MaxTokenRateForSlo(Micros(200)), 200000.0, 1.0);
  // Between points: linear interpolation.
  EXPECT_NEAR(r.MaxTokenRateForSlo(Micros(400)), 250000.0, 1.0);
  // Below the first point: conservative scale-down.
  EXPECT_LT(r.MaxTokenRateForSlo(Micros(50)), 100000.0);
  // Above all points: capped at the last measured rate.
  EXPECT_NEAR(r.MaxTokenRateForSlo(Millis(50)), 300000.0, 1.0);
}

TEST(CalibrationTest, LatencyAtTokenRateInterpolation) {
  CalibrationResult r;
  r.latency_curve = {
      {100000.0, 90000.0, Micros(100), Micros(80)},
      {200000.0, 180000.0, Micros(300), Micros(120)},
  };
  EXPECT_EQ(r.LatencyAtTokenRate(50000.0), Micros(100));
  EXPECT_EQ(r.LatencyAtTokenRate(150000.0), Micros(200));
  EXPECT_EQ(r.LatencyAtTokenRate(999999.0), Micros(300));
}

TEST(CalibrationTest, SaturationHigherForReadOnly) {
  Simulator sim;
  FlashDevice dev(sim, DeviceProfile::DeviceA(), 17);
  CalibrationConfig cfg = FastConfig();
  const double k100 = MeasureSaturationIops(sim, dev, 1.0, 4096, cfg);
  const double k99 = MeasureSaturationIops(sim, dev, 0.99, 4096, cfg);
  // Device A: read-only load roughly doubles IOPS (0.5 token reads).
  EXPECT_GT(k100, 1.5 * k99);
}

}  // namespace
}  // namespace reflex::flash
