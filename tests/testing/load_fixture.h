#ifndef REFLEX_TESTS_TESTING_LOAD_FIXTURE_H_
#define REFLEX_TESTS_TESTING_LOAD_FIXTURE_H_

#include <memory>
#include <vector>

#include "client/load_generator.h"
#include "client/reflex_client.h"
#include "testing/harness.h"

namespace reflex::testing {

/**
 * A fleet of seeded best-effort clients driving closed-loop load
 * against a Harness server: one tenant + client + session + generator
 * per slot, with per-slot seeds derived from one base seed so two
 * fixtures with the same spec replay identically. Shared bring-up for
 * the e2e property sweeps and the simtest scenarios.
 */
struct SeededLoad {
  struct Spec {
    int tenants = 1;
    double read_fraction = 1.0;
    int queue_depth = 4;
    int64_t ops_per_tenant = 300;
    uint64_t seed = 1;
    int connections_per_client = 2;
  };

  SeededLoad(Harness& h, const Spec& spec) : harness(h) {
    for (int i = 0; i < spec.tenants; ++i) {
      core::Tenant* t = h.BeTenant();
      tenants.push_back(t);
      client::ReflexClient::Options copts;
      copts.num_connections = spec.connections_per_client;
      copts.seed = spec.seed + static_cast<uint64_t>(i);
      clients.push_back(std::make_unique<client::ReflexClient>(
          h.sim, h.server, h.client_machine, copts));
      sessions.push_back(clients.back()->AttachSession(t->handle()));
      client::LoadGenSpec gspec;
      gspec.read_fraction = spec.read_fraction;
      gspec.queue_depth = spec.queue_depth;
      gspec.stop_after_ops = spec.ops_per_tenant;
      gspec.seed = spec.seed * 31 + static_cast<uint64_t>(i);
      generators.push_back(std::make_unique<client::LoadGenerator>(
          h.sim, *sessions.back(), gspec));
    }
  }

  void Start() {
    for (auto& g : generators) g->Run(0, 0);
  }

  /**
   * Steps the simulator until every generator finishes (or `deadline`
   * passes), then drains in-flight responses for 10ms of simulated
   * time. Returns true iff all generators completed.
   */
  bool AwaitAll(sim::TimeNs deadline = sim::Seconds(120)) {
    bool all = true;
    for (auto& g : generators) {
      all &= harness.RunUntilDone(g->Done(), deadline);
    }
    harness.sim.RunUntil(harness.sim.Now() + sim::Millis(10));
    return all;
  }

  int64_t TotalOps() const {
    int64_t ops = 0;
    for (const auto& g : generators) ops += g->ops_in_window();
    return ops;
  }

  int64_t TotalErrors() const {
    int64_t errors = 0;
    for (const auto& g : generators) errors += g->errors();
    return errors;
  }

  Harness& harness;
  std::vector<core::Tenant*> tenants;
  std::vector<std::unique_ptr<client::ReflexClient>> clients;
  std::vector<std::unique_ptr<client::TenantSession>> sessions;
  std::vector<std::unique_ptr<client::LoadGenerator>> generators;
};

}  // namespace reflex::testing

#endif  // REFLEX_TESTS_TESTING_LOAD_FIXTURE_H_
