#ifndef REFLEX_TESTS_TESTING_HISTOGRAM_ASSERT_H_
#define REFLEX_TESTS_TESTING_HISTOGRAM_ASSERT_H_

#include <gtest/gtest.h>

#include "sim/histogram.h"
#include "sim/time.h"

namespace reflex::testing {

/**
 * gtest predicates over sim::Histogram, reporting the histogram's
 * one-line summary on failure so a violated latency bound shows the
 * whole distribution, not just the offending percentile.
 *
 * Use with EXPECT_TRUE: EXPECT_TRUE(PercentileAtMost(h, 0.95, bound)).
 */
inline ::testing::AssertionResult PercentileAtMost(const sim::Histogram& h,
                                                   double q,
                                                   int64_t bound) {
  if (h.Count() == 0) {
    return ::testing::AssertionFailure() << "histogram is empty";
  }
  const int64_t value = h.Percentile(q);
  if (value <= bound) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "p" << q * 100.0 << " = " << value << " exceeds bound "
         << bound << " (" << h.SummaryUs() << ")";
}

inline ::testing::AssertionResult PercentileAtLeast(const sim::Histogram& h,
                                                    double q,
                                                    int64_t bound) {
  if (h.Count() == 0) {
    return ::testing::AssertionFailure() << "histogram is empty";
  }
  const int64_t value = h.Percentile(q);
  if (value >= bound) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "p" << q * 100.0 << " = " << value << " below bound " << bound
         << " (" << h.SummaryUs() << ")";
}

/** At least `min_count` samples were recorded. */
inline ::testing::AssertionResult HasSamples(const sim::Histogram& h,
                                             int64_t min_count = 1) {
  if (h.Count() >= min_count) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "histogram has " << h.Count() << " samples, want >= "
         << min_count;
}

}  // namespace reflex::testing

#endif  // REFLEX_TESTS_TESTING_HISTOGRAM_ASSERT_H_
