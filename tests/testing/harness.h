#ifndef REFLEX_TESTS_TESTING_HARNESS_H_
#define REFLEX_TESTS_TESTING_HARNESS_H_

#include <memory>

#include "core/reflex_server.h"
#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace reflex::testing {

/**
 * A synthetic calibration for device A matching the values the full
 * calibrator recovers (tests that exercise the calibrator itself live
 * in flash/calibration_test.cc). Using a fixed result keeps server
 * tests fast and independent of calibrator noise.
 */
inline flash::CalibrationResult SyntheticCalibrationA() {
  flash::CalibrationResult c;
  c.write_cost = 10.0;
  c.read_cost_readonly = 0.5;
  c.token_capacity_per_sec = 547000.0;
  c.latency_curve = {
      {54696.4, 28945.0, sim::Micros(145), sim::Micros(113)},
      {109392.7, 58120.0, sim::Micros(162), sim::Micros(121)},
      {164089.1, 86995.0, sim::Micros(178), sim::Micros(126)},
      {218785.5, 115525.0, sim::Micros(199), sim::Micros(137)},
      {273481.9, 144005.0, sim::Micros(223), sim::Micros(150)},
      {328178.2, 172470.0, sim::Micros(260), sim::Micros(166)},
      {355526.4, 186700.0, sim::Micros(291), sim::Micros(179)},
      {382874.6, 201237.5, sim::Micros(348), sim::Micros(199)},
      {410222.8, 215507.5, sim::Micros(397), sim::Micros(210)},
      {437571.0, 229790.0, sim::Micros(614), sim::Micros(248)},
      {464919.2, 244222.5, sim::Micros(909), sim::Micros(287)},
      {492267.4, 258982.5, sim::Micros(1622), sim::Micros(404)},
      {508676.3, 267547.5, sim::Micros(2015), sim::Micros(505)},
      {525085.2, 276207.5, sim::Micros(2785), sim::Micros(755)},
      {536024.5, 282335.0, sim::Micros(3113), sim::Micros(924)},
  };
  return c;
}

/** Everything needed for an end-to-end ReFlex experiment. */
struct Harness {
  explicit Harness(core::ServerOptions options = core::ServerOptions(),
                   flash::DeviceProfile profile =
                       flash::DeviceProfile::DeviceA(),
                   uint64_t seed = 42)
      : net(sim),
        device(sim, profile, seed),
        server_machine(net.AddMachine("reflex-server")),
        client_machine(net.AddMachine("client-0")),
        server(sim, net, server_machine, device, SyntheticCalibrationA(),
               options) {}

  sim::Simulator sim;
  net::Network net;
  flash::FlashDevice device;
  net::Machine* server_machine;
  net::Machine* client_machine;
  core::ReflexServer server;

  /** Registers a standard LC tenant usable for probe workloads. */
  core::Tenant* LcTenant(uint32_t iops = 50000, double read_fraction = 0.9,
                         sim::TimeNs latency = sim::Millis(2)) {
    core::SloSpec slo;
    slo.iops = iops;
    slo.read_fraction = read_fraction;
    slo.latency = latency;
    core::ReqStatus status;
    core::Tenant* t = server.RegisterTenant(
        slo, core::TenantClass::kLatencyCritical, &status);
    if (t == nullptr) {
      REFLEX_FATAL("harness LC tenant inadmissible (status=%d)",
                   static_cast<int>(status));
    }
    return t;
  }

  core::Tenant* BeTenant() {
    return server.RegisterTenant(core::SloSpec{},
                                 core::TenantClass::kBestEffort);
  }

  /**
   * Steps the simulator until `ready()` returns true or `deadline`
   * simulated time passes. Returns true if the condition was met.
   * (Plain Run() is unsuitable once a server exists: pollers and
   * monitors keep the event queue non-empty.)
   */
  template <typename ReadyFn>
  bool RunUntilReady(const ReadyFn& ready,
                     sim::TimeNs deadline = sim::Seconds(30)) {
    while (!ready() && sim.Now() < deadline) {
      sim.RunUntil(sim.Now() + sim::Millis(1));
    }
    return ready();
  }

  bool RunUntilDone(const sim::VoidFuture& future,
                    sim::TimeNs deadline = sim::Seconds(30)) {
    return RunUntilReady([&future] { return future.Ready(); }, deadline);
  }
};

}  // namespace reflex::testing

#endif  // REFLEX_TESTS_TESTING_HARNESS_H_
