#ifndef REFLEX_TESTS_TESTING_HARNESS_H_
#define REFLEX_TESTS_TESTING_HARNESS_H_

#include <memory>

#include "client/reflex_client.h"
#include "core/reflex_server.h"
#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace reflex::testing {

/**
 * A synthetic calibration for device A matching the values the full
 * calibrator recovers (tests that exercise the calibrator itself live
 * in flash/calibration_test.cc). Using a fixed result keeps server
 * tests fast and independent of calibrator noise.
 */
inline flash::CalibrationResult SyntheticCalibrationA() {
  return flash::CannedCalibrationA();
}

/**
 * Client options with fast retry/reconnect timers, tuned so fault
 * tests recover within a few simulated milliseconds. Shared by the
 * fault-injection suite and the simtest harness.
 */
inline client::ReflexClient::Options RetryingClientOptions() {
  client::ReflexClient::Options copts;
  copts.retry.request_timeout = sim::Millis(1);
  copts.retry.max_retries = 5;
  copts.retry.backoff_base = sim::Micros(100);
  copts.retry.reconnect_after_timeouts = 2;
  return copts;
}

/** Everything needed for an end-to-end ReFlex experiment. */
struct Harness {
  explicit Harness(core::ServerOptions options = core::ServerOptions(),
                   flash::DeviceProfile profile =
                       flash::DeviceProfile::DeviceA(),
                   uint64_t seed = 42)
      : net(sim),
        device(sim, profile, seed),
        server_machine(net.AddMachine("reflex-server")),
        client_machine(net.AddMachine("client-0")),
        server(sim, net, server_machine, device, SyntheticCalibrationA(),
               options) {}

  sim::Simulator sim;
  net::Network net;
  flash::FlashDevice device;
  net::Machine* server_machine;
  net::Machine* client_machine;
  core::ReflexServer server;

  /** Registers a standard LC tenant usable for probe workloads. */
  core::Tenant* LcTenant(uint32_t iops = 50000, double read_fraction = 0.9,
                         sim::TimeNs latency = sim::Millis(2)) {
    core::SloSpec slo;
    slo.iops = iops;
    slo.read_fraction = read_fraction;
    slo.latency = latency;
    core::ReqStatus status;
    core::Tenant* t = server.RegisterTenant(
        slo, core::TenantClass::kLatencyCritical, &status);
    if (t == nullptr) {
      REFLEX_FATAL("harness LC tenant inadmissible (status=%d)",
                   static_cast<int>(status));
    }
    return t;
  }

  core::Tenant* BeTenant() {
    return server.RegisterTenant(core::SloSpec{},
                                 core::TenantClass::kBestEffort);
  }

  /**
   * Steps the simulator until `ready()` returns true or `deadline`
   * simulated time passes. Returns true if the condition was met.
   * (Plain Run() is unsuitable once a server exists: pollers and
   * monitors keep the event queue non-empty.)
   */
  template <typename ReadyFn>
  bool RunUntilReady(const ReadyFn& ready,
                     sim::TimeNs deadline = sim::Seconds(30)) {
    while (!ready() && sim.Now() < deadline) {
      sim.RunUntil(sim.Now() + sim::Millis(1));
    }
    return ready();
  }

  bool RunUntilDone(const sim::VoidFuture& future,
                    sim::TimeNs deadline = sim::Seconds(30)) {
    return RunUntilReady([&future] { return future.Ready(); }, deadline);
  }
};

}  // namespace reflex::testing

#endif  // REFLEX_TESTS_TESTING_HARNESS_H_
