#ifndef REFLEX_TESTS_TESTING_CLUSTER_HARNESS_H_
#define REFLEX_TESTS_TESTING_CLUSTER_HARNESS_H_

#include "client/reflex_client.h"
#include "cluster/cluster_client.h"
#include "cluster/flash_cluster.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "testing/harness.h"

namespace reflex::testing {

/** Standard LC SLO for admission and QoS tests. */
inline core::SloSpec LcSlo(uint32_t iops, double read_fraction = 1.0,
                           sim::TimeNs latency = sim::Micros(500)) {
  core::SloSpec slo;
  slo.iops = iops;
  slo.read_fraction = read_fraction;
  slo.latency = latency;
  return slo;
}

/** A FlashCluster plus one client machine, ready for I/O. */
struct ClusterHarness {
  explicit ClusterHarness(int num_shards = 2, uint32_t stripe_sectors = 8)
      : ClusterHarness(MakeOptions(num_shards, stripe_sectors)) {}

  explicit ClusterHarness(cluster::FlashClusterOptions options)
      : ClusterHarness(options, cluster::ClusterClient::Options()) {}

  ClusterHarness(cluster::FlashClusterOptions options,
                 cluster::ClusterClient::Options client_options)
      : net(sim),
        cluster(sim, net, options),
        client_machine(net.AddMachine("client-0")),
        client(cluster, client_machine, client_options) {}

  static cluster::FlashClusterOptions MakeOptions(int num_shards,
                                                  uint32_t stripe_sectors,
                                                  int replication = 1) {
    cluster::FlashClusterOptions options;
    options.num_shards = num_shards;
    options.calibration = SyntheticCalibrationA();
    options.shard_map.stripe_sectors = stripe_sectors;
    options.shard_map.replication = replication;
    return options;
  }

  template <typename ReadyFn>
  bool RunUntilReady(const ReadyFn& ready,
                     sim::TimeNs deadline = sim::Seconds(30)) {
    while (!ready() && sim.Now() < deadline) {
      sim.RunUntil(sim.Now() + sim::Millis(1));
    }
    return ready();
  }

  bool Await(const sim::Future<client::IoResult>& io,
             sim::TimeNs deadline = sim::Seconds(30)) {
    return RunUntilReady([&io] { return io.Ready(); }, deadline);
  }

  sim::Simulator sim;
  net::Network net;
  cluster::FlashCluster cluster;
  net::Machine* client_machine;
  cluster::ClusterClient client;
};

}  // namespace reflex::testing

#endif  // REFLEX_TESTS_TESTING_CLUSTER_HARNESS_H_
